"""Tests for the Shrivastava–Li asymmetric transform (paper Eq. 2–3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lsh.alsh import AsymmetricTransform


class TestConstruction:
    @pytest.mark.parametrize("m", [0, -1])
    def test_invalid_m(self, m):
        with pytest.raises(ValueError):
            AsymmetricTransform(m=m)

    @pytest.mark.parametrize("scale", [0.0, 1.0, 1.5])
    def test_invalid_scale(self, scale):
        with pytest.raises(ValueError):
            AsymmetricTransform(scale=scale)

    def test_output_dim(self):
        assert AsymmetricTransform(m=3).output_dim(10) == 13


class TestDataTransform:
    def test_shapes(self, rng):
        t = AsymmetricTransform(m=3)
        data = rng.normal(size=(20, 8))
        p, s = t.transform_data(data)
        assert p.shape == (20, 11)
        assert s > 0

    def test_max_scaled_norm_equals_target(self, rng):
        t = AsymmetricTransform(m=3, scale=0.83)
        data = rng.normal(size=(20, 8))
        _, s = t.transform_data(data)
        assert np.linalg.norm(data * s, axis=1).max() == pytest.approx(0.83)

    def test_padding_is_norm_powers(self, rng):
        t = AsymmetricTransform(m=3, scale=0.5)
        data = rng.normal(size=(5, 4))
        p, s = t.transform_data(data)
        norms_sq = np.linalg.norm(data * s, axis=1) ** 2
        np.testing.assert_allclose(p[:, 4], norms_sq)
        np.testing.assert_allclose(p[:, 5], norms_sq**2)
        np.testing.assert_allclose(p[:, 6], norms_sq**4)

    def test_zero_data_scale_one(self):
        t = AsymmetricTransform()
        p, s = t.transform_data(np.zeros((3, 4)))
        assert s == 1.0
        np.testing.assert_array_equal(p[:, :4], 0.0)


class TestQueryTransform:
    def test_normalised_and_padded(self, rng):
        t = AsymmetricTransform(m=3)
        q = t.transform_query(rng.normal(size=(7, 5)) * 10)
        np.testing.assert_allclose(np.linalg.norm(q[:, :5], axis=1), 1.0)
        np.testing.assert_array_equal(q[:, 5:], 0.5)

    def test_zero_query_not_nan(self):
        t = AsymmetricTransform(m=2)
        q = t.transform_query(np.zeros((1, 4)))
        assert np.isfinite(q).all()

    def test_one_dim_helper(self, rng):
        t = AsymmetricTransform(m=2)
        v = rng.normal(size=6)
        np.testing.assert_array_equal(
            t.transform_query_one(v), t.transform_query(v.reshape(1, -1))[0]
        )


class TestEquationThree:
    def test_distance_identity(self, rng):
        """‖Q(a) − P(w)‖² = 1 + m/4 − 2s·⟨a, w⟩ + ‖s·w‖^{2^{m+1}}
        for unit queries a and scaled data s·w (Eq. 3's expansion)."""
        t = AsymmetricTransform(m=3, scale=0.8)
        data = rng.normal(size=(10, 6))
        p, s = t.transform_data(data)
        a = rng.normal(size=6)
        a /= np.linalg.norm(a)
        q = t.transform_query_one(a)
        for i in range(10):
            w = data[i] * s
            lhs = np.linalg.norm(q - p[i]) ** 2
            rhs = 1 + t.m / 4 - 2 * (a @ w) + np.linalg.norm(w) ** (2 ** (t.m + 1))
            assert lhs == pytest.approx(rhs, rel=1e-9)

    def test_argmin_distance_is_argmax_inner_product(self, rng):
        """The headline reduction: NNS in transformed space solves MIPS."""
        t = AsymmetricTransform(m=3, scale=0.83)
        data = rng.normal(size=(50, 10))
        p, s = t.transform_data(data)
        hits = 0
        for trial in range(20):
            a = rng.normal(size=10)
            a /= np.linalg.norm(a)
            q = t.transform_query_one(a)
            true_best = int(np.argmax(data @ a))
            transformed_best = int(np.argmin(np.linalg.norm(p - q, axis=1)))
            hits += true_best == transformed_best
        # The residual ‖w‖^{2^{m+1}} term is ≤ 0.83^16 ≈ 0.05, so the argmax
        # should almost always be preserved.
        assert hits >= 18

    def test_residual_decays_with_m(self, rng):
        w = rng.normal(size=5)
        w = 0.8 * w / np.linalg.norm(w)
        residuals = [
            AsymmetricTransform(m=m).distance_identity_residual(w) for m in (1, 2, 3, 4)
        ]
        assert residuals == sorted(residuals, reverse=True)
        assert residuals[-1] < 1e-3

    @settings(max_examples=25)
    @given(st.integers(0, 10**6))
    def test_transform_deterministic(self, seed):
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(4, 5))
        t = AsymmetricTransform(m=2)
        p1, s1 = t.transform_data(data)
        p2, s2 = t.transform_data(data)
        assert s1 == s2
        np.testing.assert_array_equal(p1, p2)
