"""Tests for the §11 energy model."""

import pytest

from repro.harness.energy import EnergyModel, estimate_training_energy

ARCH = [128, 96, 96, 10]


class TestValidation:
    def test_negative_coefficients_rejected(self):
        with pytest.raises(ValueError):
            EnergyModel(pj_per_flop=-1.0)


class TestEstimates:
    @pytest.fixture(scope="class")
    def estimates(self):
        return estimate_training_energy(ARCH, batch=1)

    def test_all_methods_positive(self, estimates):
        for method, e in estimates.items():
            assert e.compute_j > 0, method
            assert e.dram_j >= 0, method
            assert e.total_j == pytest.approx(
                e.compute_j + e.dram_j + e.cache_j
            )

    def test_dropout_cheapest_compute(self, estimates):
        compute = {m: e.compute_j for m, e in estimates.items()}
        assert compute["dropout"] == min(compute.values())

    def test_energy_scales_with_flop_coefficient(self):
        cheap = EnergyModel(pj_per_flop=1.0).estimate_step("standard", ARCH)
        pricey = EnergyModel(pj_per_flop=10.0).estimate_step("standard", ARCH)
        assert pricey.compute_j == pytest.approx(10 * cheap.compute_j)
        assert pricey.dram_j == pytest.approx(cheap.dram_j)

    def test_memory_bound_regime(self):
        """With free arithmetic, the ordering is set by traffic: the
        adaptive/dropout mask passes cost more than MC's row bands."""
        model = EnergyModel(pj_per_flop=0.0)
        est = estimate_training_energy(ARCH, batch=1, model=model)
        assert est["mc"].total_j <= est["adaptive_dropout"].total_j + 1e-15

    def test_topk_maps_to_sliced_trace(self):
        """The oracle trainer reuses the column-sliced trace for traffic."""
        model = EnergyModel()
        e = model.estimate_step("topk", ARCH, batch=1, active_frac=0.2)
        assert e.total_j > 0
