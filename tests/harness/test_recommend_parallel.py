"""Tests for the §10.4 decision tree and the parallel-speedup model."""

import pytest

from repro.harness.parallel import (
    ALSH_PHASES,
    PhaseProfile,
    fit_from_measurements,
    measured_vs_projected,
    projected_time,
    speedup_curve,
)
from repro.harness.recommend import Recommendation, recommend_method


class TestDecisionTree:
    def test_minibatch_always_mc(self):
        for depth in (1, 3, 10):
            rec = recommend_method(batch_size=20, hidden_layers=depth)
            assert rec.method == "mc"
            assert "minibatch" in rec.reason

    def test_stochastic_shallow_parallel_is_alsh(self):
        rec = recommend_method(1, hidden_layers=3, parallel_hardware=True)
        assert rec.method == "alsh"

    def test_boundary_depth_four_still_alsh(self):
        """The paper's tree reads 'Shallow (<=4)'."""
        assert recommend_method(1, 4, parallel_hardware=True).method == "alsh"
        assert recommend_method(1, 5, parallel_hardware=True).method == "standard"

    def test_stochastic_shallow_sequential_is_standard(self):
        rec = recommend_method(1, 2, parallel_hardware=False)
        assert rec.method == "standard"
        assert "Table 3" in rec.reason

    def test_stochastic_deep_is_standard_open_problem(self):
        rec = recommend_method(1, 7, parallel_hardware=True)
        assert rec.method == "standard"
        assert "open research" in rec.reason

    def test_validation(self):
        with pytest.raises(ValueError):
            recommend_method(0, 3)
        with pytest.raises(ValueError):
            recommend_method(1, -1)

    def test_recommendation_is_frozen(self):
        rec = recommend_method(20, 3)
        with pytest.raises(Exception):
            rec.method = "dropout"


class TestPhaseProfile:
    def test_serial_phase_never_speeds_up(self):
        phase = PhaseProfile("serial", share=1.0, parallel_fraction=0.0)
        assert phase.time_at(64) == phase.time_at(1)

    def test_fully_parallel_phase_scales_linearly(self):
        phase = PhaseProfile("par", share=1.0, parallel_fraction=1.0)
        assert phase.time_at(8) == pytest.approx(1.0 / 8)

    def test_scaling_limit_caps(self):
        phase = PhaseProfile("lim", 1.0, 1.0, scaling_limit=4)
        assert phase.time_at(64) == phase.time_at(4)

    def test_invalid_processors(self):
        with pytest.raises(ValueError):
            PhaseProfile("x", 1.0, 0.5).time_at(0)


class TestProjectedTime:
    def test_monotone_in_processors(self):
        times = [projected_time(10.0, p) for p in (1, 2, 4, 16, 64)]
        assert times == sorted(times, reverse=True)

    def test_single_core_identity(self):
        assert projected_time(7.5, 1) == pytest.approx(7.5)

    def test_shares_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            projected_time(1.0, 2, [PhaseProfile("a", 0.5, 0.5)])

    def test_invalid_time(self):
        with pytest.raises(ValueError):
            projected_time(0.0, 2)

    def test_paper_scaling_regime(self):
        """With the paper's phase mix, 64 cores give a large speedup but
        Amdahl's serial remainder caps it well below 64x."""
        curve = speedup_curve([1, 4, 16, 64])
        assert curve[1] == pytest.approx(1.0)
        assert 3.0 < curve[4] < 4.0
        assert curve[64] > 6.0
        assert curve[64] < 64.0
        # Diminishing returns: marginal gain shrinks.
        assert curve[64] / curve[16] < curve[16] / curve[4]


class TestFitFromMeasurements:
    def test_recovers_known_fraction(self):
        """Times generated from an Amdahl law are fitted back exactly."""
        f = 0.8
        times = {p: (1 - f) + f / p for p in (1, 2, 4, 8)}
        fitted = fit_from_measurements(times)
        assert fitted.parallel_fraction == pytest.approx(f)
        assert fitted.share == 1.0

    def test_perfectly_serial_and_parallel_extremes(self):
        serial = fit_from_measurements({1: 2.0, 2: 2.0, 8: 2.0})
        assert serial.parallel_fraction == pytest.approx(0.0)
        linear = fit_from_measurements({1: 8.0, 2: 4.0, 8: 1.0})
        assert linear.parallel_fraction == pytest.approx(1.0)

    def test_fraction_clamped(self):
        # Superlinear "measurements" (cache effects) clamp to 1.
        fitted = fit_from_measurements({1: 10.0, 8: 0.5})
        assert fitted.parallel_fraction == 1.0

    def test_fitted_profile_feeds_speedup_curve(self):
        fitted = fit_from_measurements({1: 1.0, 2: 0.6, 4: 0.4})
        curve = speedup_curve([1, 2, 4], phases=(fitted,))
        assert curve[1] == pytest.approx(1.0)
        assert curve[2] > 1.0

    def test_requires_single_core_point(self):
        with pytest.raises(ValueError, match="1-processor"):
            fit_from_measurements({2: 1.0, 4: 0.5})
        with pytest.raises(ValueError):
            fit_from_measurements({1: 0.0, 2: 1.0})
        with pytest.raises(ValueError):
            fit_from_measurements({1: 1.0, 2: -1.0})

    def test_measured_vs_projected_report(self):
        f = 0.9
        times = {p: (1 - f) + f / p for p in (1, 2, 4)}
        report = measured_vs_projected(times)
        assert sorted(report) == [1, 2, 4]
        for p, row in report.items():
            assert row["measured"] == pytest.approx(times[1] / times[p])
            assert row["fitted"] == pytest.approx(row["measured"], rel=1e-6)
            # The §9.2 projection comes from ALSH_PHASES, not the fit.
            assert row["projected"] == pytest.approx(
                1.0 / projected_time(1.0, p, ALSH_PHASES)
            )
