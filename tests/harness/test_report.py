"""Tests for markdown report generation."""

import pytest

from repro.harness.config import ExperimentConfig
from repro.harness.experiment import run_experiment
from repro.harness.report import (
    depth_sweep_table,
    method_comparison_table,
    render_report,
)


@pytest.fixture(scope="module")
def results(tiny_dataset):
    out = []
    for method, depth in [("standard", 1), ("standard", 2), ("mc", 1)]:
        cfg = ExperimentConfig(
            method=method, hidden_layers=depth, hidden_width=12,
            epochs=1, batch_size=20, lr=1e-2, seed=0,
        )
        out.append(run_experiment(cfg, dataset=tiny_dataset))
    return out


class TestMethodComparison:
    def test_one_row_per_method(self, results):
        table = method_comparison_table(results)
        lines = table.splitlines()
        # header + separator + 2 methods (standard^M best-of, mc^M)
        assert len(lines) == 4
        assert "standard^M" in table
        assert "mc^M" in table

    def test_best_of_represents_method(self, results):
        table = method_comparison_table(results)
        best_std = max(
            (r for r in results if r.config.method == "standard"),
            key=lambda r: r.test_accuracy,
        )
        assert f"{best_std.test_accuracy:.4f}" in table

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            method_comparison_table([])


class TestDepthSweep:
    def test_matrix_shape(self, results):
        table = depth_sweep_table(results)
        lines = table.splitlines()
        assert lines[0].startswith("| hidden layers |")
        assert len(lines) == 4  # header + sep + depths 1, 2

    def test_missing_cells_dash(self, results):
        # mc only ran at depth 1; depth-2 row shows '-' in the mc column.
        table = depth_sweep_table(results)
        depth2_row = [l for l in table.splitlines() if l.startswith("| 2 ")][0]
        assert "-" in depth2_row


class TestRenderReport:
    def test_full_report(self, results):
        report = render_report(results, title="Mini report")
        assert report.startswith("# Mini report")
        # Grouping is by the config's dataset field (the fixture passes
        # tiny data under the default "mnist" config).
        assert "## mnist" in report
        assert "Accuracy vs depth" in report

    def test_single_depth_omits_sweep(self, results):
        only_depth1 = [r for r in results if r.config.hidden_layers == 1]
        report = render_report(only_depth1)
        assert "Accuracy vs depth" not in report

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_report([])
