"""Tests for the analytical FLOP model."""

import pytest

from repro.harness.flops import (
    StepFlops,
    flops_table,
    method_step_flops,
    speedup_vs_standard,
)

ARCH = [784, 1000, 1000, 1000, 10]


class TestStepFlops:
    def test_total(self):
        f = StepFlops(1.0, 2.0, 3.0)
        assert f.total == 6.0

    def test_add(self):
        s = StepFlops(1, 2, 3) + StepFlops(10, 20, 30)
        assert (s.forward, s.backward, s.overhead) == (11, 22, 33)


class TestValidation:
    def test_unknown_method(self):
        with pytest.raises(ValueError, match="unknown method"):
            method_step_flops("slide", ARCH)

    def test_short_arch(self):
        with pytest.raises(ValueError):
            method_step_flops("standard", [10])

    def test_bad_batch(self):
        with pytest.raises(ValueError):
            method_step_flops("standard", ARCH, batch=0)


class TestStandard:
    def test_dominant_term_matches_theta_n_squared(self):
        """For an n-wide layer the forward cost is ~2Bn² (§4.1)."""
        n = 1000
        f = method_step_flops("standard", [n, n], batch=1)
        assert f.forward == pytest.approx(2 * n * n, rel=0.01)

    def test_scales_linearly_in_batch(self):
        f1 = method_step_flops("standard", ARCH, batch=1)
        f20 = method_step_flops("standard", ARCH, batch=20)
        # Updates are per-step, not per-sample, so growth is sub-linear
        # but close to 20x for the matmul-dominated parts.
        assert 15 < f20.forward / f1.forward <= 20.01

    def test_backward_exceeds_forward(self):
        """§10.1: backprop does more arithmetic than the feedforward."""
        f = method_step_flops("standard", ARCH, batch=20)
        assert f.backward > f.forward


class TestPaperShapes:
    def test_mc_slower_than_standard_at_batch_one(self):
        """§9.3 in closed form: the probability passes make MC-approx a
        net arithmetic loss at batch size 1."""
        assert speedup_vs_standard("mc", ARCH, batch=1, k=10) < 1.0

    def test_mc_faster_at_paper_batch(self):
        assert speedup_vs_standard("mc", ARCH, batch=20, k=10) > 1.3

    def test_dropout_has_biggest_arithmetic_saving(self):
        table = flops_table(ARCH, batch=1, keep_prob=0.05, active_frac=0.2)
        assert table["dropout"].total == min(
            t.total for name, t in table.items()
        )

    def test_alsh_overhead_positive_but_saving_remains(self):
        f = method_step_flops("alsh", ARCH, batch=1, active_frac=0.2)
        assert f.overhead > 0
        assert speedup_vs_standard("alsh", ARCH, batch=1, active_frac=0.2) > 1.5

    def test_adaptive_dropout_never_saves(self):
        """Standout computes every full product; overhead only (§9.2)."""
        assert speedup_vs_standard("adaptive_dropout", ARCH, batch=1) <= 1.0

    def test_topk_oracle_pays_selection(self):
        """Oracle selection costs the full product: cheaper than standard
        in total (the backward is sparse) but far above dropout."""
        table = flops_table(ARCH, batch=1, keep_prob=0.2, active_frac=0.2)
        assert table["dropout"].total < table["topk"].total < table["standard"].total

    def test_mc_batch_dimension_budget_clipped(self):
        """With batch < k the gW product is exact (inner dim = batch)."""
        small = method_step_flops("mc", ARCH, batch=2, k=10)
        # gW cost equals standard's at batch 2 since min(k, 2) = 2.
        std = method_step_flops("standard", ARCH, batch=2)
        assert small.backward < std.backward  # da sampling still saves

    def test_unknown_kwargs_ignored(self):
        f = method_step_flops("standard", ARCH, batch=1, keep_prob=0.5, k=3)
        assert f.total > 0
