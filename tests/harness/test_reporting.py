"""Tests for the text table / confusion-matrix / series renderers."""

import numpy as np
import pytest

from repro.harness.reporting import (
    format_markdown_table,
    format_series,
    format_table,
    render_confusion,
)


class TestFormatTable:
    def test_alignment_and_content(self):
        text = format_table(
            ["method", "acc"],
            [["standard", 0.9512], ["mc", 0.9789]],
            title="Table 2",
        )
        lines = text.splitlines()
        assert lines[0] == "Table 2"
        assert "method" in lines[1]
        assert "0.9512" in text
        assert "0.9789" in text

    def test_none_rendered_as_dash(self):
        text = format_table(["a"], [[None]])
        assert "-" in text.splitlines()[-1]

    def test_column_count_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_custom_float_format(self):
        text = format_table(["x"], [[0.123456]], float_fmt="{:.1f}")
        assert "0.1" in text
        assert "0.123456" not in text


class TestMarkdownTable:
    def test_structure(self):
        text = format_markdown_table(["a", "b"], [[1, 0.5]])
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 0.5000 |"


class TestRenderConfusion:
    def test_diagonal_matrix_reads_clean(self):
        cm = np.diag([10, 10, 10])
        text = render_confusion(cm, title="perfect")
        assert "perfect" in text
        assert "diagonal mass: 1.000" in text

    def test_collapsed_predictions_visible(self):
        """A §10.3-style collapse (everything predicted class 0) puts all
        the mass in one column."""
        cm = np.zeros((3, 3), dtype=int)
        cm[:, 0] = 10
        text = render_confusion(cm)
        assert "diagonal mass: 0.333" in text

    def test_empty_rows_safe(self):
        cm = np.zeros((2, 2), dtype=int)
        cm[0, 0] = 5
        text = render_confusion(cm)
        assert "diagonal mass" in text

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            render_confusion(np.zeros((2, 3)))


class TestFormatSeries:
    def test_layout(self):
        text = format_series(
            "layers",
            [1, 2, 3],
            {"standard": [0.9, 0.91, 0.92], "alsh": [0.9, 0.6, 0.3]},
            title="Figure 7",
        )
        lines = text.splitlines()
        assert lines[0] == "Figure 7"
        assert "layers" in lines[1]
        assert "alsh" in lines[1]
        assert "0.3000" in text

    def test_ragged_series_padded(self):
        text = format_series("x", [1, 2], {"s": [0.5]})
        assert "-" in text.splitlines()[-1]
