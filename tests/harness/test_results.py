"""Tests for experiment-result persistence."""

import numpy as np
import pytest

from repro.harness.config import ExperimentConfig
from repro.harness.experiment import run_experiment
from repro.harness.results import ResultStore, result_from_dict, result_to_dict


@pytest.fixture(scope="module")
def result(tiny_dataset):
    cfg = ExperimentConfig(
        method="standard", hidden_layers=1, hidden_width=16,
        epochs=2, batch_size=20, lr=1e-2, seed=0,
    )
    return run_experiment(cfg, dataset=tiny_dataset)


class TestRoundTrip:
    def test_dict_round_trip(self, result):
        restored = result_from_dict(result_to_dict(result))
        assert restored.config == result.config
        assert restored.test_accuracy == result.test_accuracy
        np.testing.assert_array_equal(restored.confusion, result.confusion)
        assert len(restored.history.epochs) == len(result.history.epochs)
        assert restored.history.epochs[0].loss == result.history.epochs[0].loss

    def test_json_serialisable(self, result):
        import json

        text = json.dumps(result_to_dict(result))
        assert "standard" in text


class TestStore:
    def test_append_and_load(self, result, tmp_path):
        store = ResultStore(tmp_path / "runs" / "results.jsonl")
        store.append(result)
        store.append(result)
        loaded = store.load()
        assert len(loaded) == 2
        assert loaded[0].test_accuracy == result.test_accuracy

    def test_load_missing_is_empty(self, tmp_path):
        assert ResultStore(tmp_path / "none.jsonl").load() == []

    def test_find_filters(self, result, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        store.append(result)
        assert len(store.find(method="standard")) == 1
        assert store.find(method="mc") == []
        assert len(store.find(dataset=result.config.dataset)) == 1
        assert store.find(hidden_layers=99) == []

    def test_best(self, result, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        assert store.best(method="standard") is None
        store.append(result)
        best = store.best(method="standard")
        assert best is not None
        assert best.test_accuracy == result.test_accuracy

    def test_partial_lines_ignored(self, result, tmp_path):
        path = tmp_path / "r.jsonl"
        store = ResultStore(path)
        store.append(result)
        with open(path, "a") as f:
            f.write("\n")  # stray blank line
        assert len(store.load()) == 1
