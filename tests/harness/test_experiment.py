"""Tests for the experiment runner."""

import numpy as np
import pytest

from repro.harness.config import ExperimentConfig
from repro.harness.experiment import build_network, run_experiment


@pytest.fixture(scope="module")
def quick_config():
    return ExperimentConfig(
        method="standard",
        dataset="mnist",
        data_scale=0.003,
        hidden_layers=2,
        hidden_width=24,
        epochs=2,
        batch_size=10,
        lr=1e-2,
        seed=0,
    )


class TestBuildNetwork:
    def test_architecture(self, quick_config, tiny_dataset):
        net = build_network(quick_config, tiny_dataset)
        assert net.layer_sizes == [
            tiny_dataset.input_dim, 24, 24, tiny_dataset.n_classes
        ]

    def test_zero_hidden_layers(self, tiny_dataset):
        cfg = ExperimentConfig(hidden_layers=0, hidden_width=24)
        net = build_network(cfg, tiny_dataset)
        assert net.layer_sizes == [tiny_dataset.input_dim, tiny_dataset.n_classes]


class TestRunExperiment:
    @pytest.fixture(scope="class")
    def result(self, quick_config):
        return run_experiment(quick_config)

    def test_history_populated(self, result):
        assert len(result.history.epochs) == 2
        assert result.history.method == "standard"

    def test_accuracy_in_range(self, result):
        assert 0.0 <= result.test_accuracy <= 1.0

    def test_confusion_matrix_shape_and_mass(self, result):
        assert result.confusion.shape == (10, 10)
        assert result.confusion.sum() > 0

    def test_collapse_diagnostics(self, result):
        assert 0.0 <= result.pred_entropy <= np.log(10) + 1e-9
        assert 1 <= result.n_distinct_predictions <= 10

    def test_timing(self, result):
        assert result.train_time > 0
        assert result.time_per_epoch == pytest.approx(result.train_time / 2)

    def test_memory_breakdown(self, result):
        assert result.memory_breakdown["weights"] > 0
        assert "total" in result.memory_breakdown

    def test_summary_readable(self, result):
        text = result.summary()
        assert "standard^M" in text
        assert "mnist" in text

    def test_external_dataset_reused(self, quick_config, tiny_dataset):
        cfg = quick_config.with_overrides(hidden_width=16, epochs=1)
        result = run_experiment(cfg, dataset=tiny_dataset)
        assert result.confusion.shape == (3, 3)

    def test_deterministic_given_seed(self, quick_config):
        a = run_experiment(quick_config)
        b = run_experiment(quick_config)
        assert a.test_accuracy == b.test_accuracy
        np.testing.assert_array_equal(a.confusion, b.confusion)

    @pytest.mark.parametrize("method", ["dropout", "adaptive_dropout", "mc"])
    def test_other_methods_run(self, quick_config, method):
        cfg = quick_config.with_overrides(method=method, epochs=1)
        result = run_experiment(cfg)
        assert 0.0 <= result.test_accuracy <= 1.0

    def test_alsh_runs_stochastic(self, quick_config):
        cfg = quick_config.with_overrides(
            method="alsh", optimizer="adam", batch_size=1, epochs=1,
            hidden_layers=1,
        )
        result = run_experiment(cfg)
        assert 0.0 <= result.test_accuracy <= 1.0
