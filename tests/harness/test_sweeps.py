"""Tests for the declarative sweep runner."""

import pytest

from repro.harness.config import ExperimentConfig
from repro.harness.results import ResultStore
from repro.harness.sweeps import Sweep


@pytest.fixture
def base():
    return ExperimentConfig(
        method="standard", hidden_layers=1, hidden_width=12,
        epochs=1, batch_size=20, lr=1e-2, seed=0,
    )


class TestValidation:
    def test_empty_grid(self, base):
        with pytest.raises(ValueError):
            Sweep(base, {})

    def test_unknown_field(self, base):
        with pytest.raises(ValueError, match="unknown config fields"):
            Sweep(base, {"widht": [1]})

    def test_empty_values(self, base):
        with pytest.raises(ValueError):
            Sweep(base, {"epochs": []})


class TestExpansion:
    def test_len_is_product(self, base):
        sweep = Sweep(base, {"hidden_layers": [1, 2, 3], "method": ["standard", "mc"]})
        assert len(sweep) == 6

    def test_configs_cover_grid(self, base):
        sweep = Sweep(base, {"hidden_layers": [1, 2], "epochs": [1, 3]})
        combos = {(c.hidden_layers, c.epochs) for c in sweep.configs()}
        assert combos == {(1, 1), (1, 3), (2, 1), (2, 3)}

    def test_base_fields_preserved(self, base):
        sweep = Sweep(base, {"hidden_layers": [2]})
        cfg = next(sweep.configs())
        assert cfg.hidden_width == 12
        assert cfg.method == "standard"

    def test_paper_defaults_apply_method_settings(self, base):
        sweep = Sweep(
            base, {"method": ["alsh", "mc"], "batch_size": [1]},
            paper_defaults=True,
        )
        by_method = {c.method: c for c in sweep.configs()}
        assert by_method["alsh"].optimizer == "adam"
        assert by_method["mc"].lr == pytest.approx(1e-4)  # §9.3 S setting
        assert by_method["mc"].hidden_width == 12  # base carried over


class TestRun:
    def test_runs_and_stores(self, base, tiny_dataset, tmp_path):
        store = ResultStore(tmp_path / "sweep.jsonl")
        sweep = Sweep(base, {"hidden_layers": [1, 2]})
        results = sweep.run(store=store, dataset=tiny_dataset)
        assert len(results) == 2
        assert len(store.load()) == 2

    def test_resume_skips_done(self, base, tiny_dataset, tmp_path):
        store = ResultStore(tmp_path / "sweep.jsonl")
        sweep = Sweep(base, {"hidden_layers": [1, 2]})
        sweep.run(store=store, dataset=tiny_dataset)
        ran = []
        sweep.run(
            store=store, dataset=tiny_dataset,
            callback=lambda r: ran.append(r),
        )
        assert ran == []  # everything resumed from the store
        assert len(store.load()) == 2  # nothing re-appended

    def test_partial_resume(self, base, tiny_dataset, tmp_path):
        store = ResultStore(tmp_path / "sweep.jsonl")
        Sweep(base, {"hidden_layers": [1]}).run(store=store, dataset=tiny_dataset)
        ran = []
        results = Sweep(base, {"hidden_layers": [1, 2]}).run(
            store=store, dataset=tiny_dataset,
            callback=lambda r: ran.append(r),
        )
        assert len(results) == 2
        assert len(ran) == 1
        assert ran[0].config.hidden_layers == 2

    def test_store_as_path_string(self, base, tiny_dataset, tmp_path):
        path = tmp_path / "s.jsonl"
        Sweep(base, {"epochs": [1]}).run(store=str(path), dataset=tiny_dataset)
        assert path.exists()

    def test_no_store_runs_everything(self, base, tiny_dataset):
        results = Sweep(base, {"hidden_layers": [1]}).run(dataset=tiny_dataset)
        assert len(results) == 1
