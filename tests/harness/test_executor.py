"""Tests for the multiprocess fault-tolerant experiment executor.

Covers the contract the benches and CLI rely on: a parallel sweep equals
the serial sweep bit-for-bit for the same seeds; injected failures are
retried and recorded in the JSONL sink (never swallowed); a timed-out task
does not abort the sweep; and a partial sink resumes correctly.

Task functions live at module level so worker processes can unpickle them.
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.registry import make_trainer
from repro.harness.config import ExperimentConfig
from repro.harness.executor import (
    CheckpointedExperimentTask,
    ExecutorError,
    ExperimentExecutor,
    JsonlSink,
    derive_task_seeds,
    run_experiment_traced,
    task_key,
)
from repro.harness.experiment import run_experiment
from repro.harness.sweeps import Sweep
from repro.nn.network import MLP

PAPER_METHODS = ["standard", "dropout", "adaptive_dropout", "alsh", "mc"]


def small_config(**overrides) -> ExperimentConfig:
    base = dict(
        method="standard", hidden_layers=1, hidden_width=8,
        epochs=1, batch_size=20, lr=1e-2, seed=0,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


# ----------------------------------------------------------------------
# module-level task functions (picklable)
# ----------------------------------------------------------------------
def double_task(task, dataset):
    return task["value"] * 2


def flaky_task(task, dataset):
    """Raises until its marker file exists — one injected crash per task."""
    marker = Path(task["marker"])
    if task.get("crash") and not marker.exists():
        marker.touch()
        raise RuntimeError("injected worker crash")
    return task["value"]


def sleepy_task(task, dataset):
    time.sleep(task.get("sleep", 0.0))
    return task["value"]


def counting_task(task, dataset):
    """Records every execution as a file so tests can count re-runs."""
    stamp = Path(task["dir"]) / f"run-{task['value']}-{time.monotonic_ns()}"
    stamp.touch()
    if task.get("fail"):
        raise RuntimeError("injected failure")
    return task["value"]


# ----------------------------------------------------------------------
def assert_results_equal(a, b):
    """Bitwise equality of the trained outcome (wall-clock aside)."""
    np.testing.assert_array_equal(a.history.losses(), b.history.losses())
    np.testing.assert_array_equal(a.confusion, b.confusion)
    assert a.test_accuracy == b.test_accuracy
    assert a.pred_entropy == b.pred_entropy
    assert a.n_distinct_predictions == b.n_distinct_predictions


class TestSerialParallelEquality:
    def test_four_workers_match_serial(self, tiny_dataset):
        """A 4-worker sweep of 8 configs equals the serial run bitwise."""
        configs = [
            small_config(method=m, hidden_layers=d, seed=s)
            for m in ("standard", "mc")
            for d in (1, 2)
            for s in (0, 1)
        ]
        assert len(configs) == 8
        serial = ExperimentExecutor(max_workers=1).run(configs, dataset=tiny_dataset)
        parallel = ExperimentExecutor(max_workers=4).run(configs, dataset=tiny_dataset)
        assert [o.status for o in serial] == ["ok"] * 8
        assert [o.status for o in parallel] == ["ok"] * 8
        for s, p in zip(serial, parallel):
            assert_results_equal(s.result, p.result)

    def test_outcomes_keep_task_order(self, tiny_dataset):
        configs = [small_config(seed=s) for s in range(6)]
        outcomes = ExperimentExecutor(max_workers=3).run(configs, dataset=tiny_dataset)
        assert [o.index for o in outcomes] == list(range(6))
        assert [o.key for o in outcomes] == [c.key() for c in configs]

    def test_sweep_run_with_workers_matches_serial(self, tiny_dataset):
        sweep = Sweep(small_config(), {"hidden_layers": [1, 2], "seed": [0, 1]})
        serial = sweep.run(dataset=tiny_dataset)
        parallel = sweep.run(dataset=tiny_dataset, workers=2)
        for s, p in zip(serial, parallel):
            assert_results_equal(s, p)


class TestSeedDerivation:
    def test_seeds_deterministic_and_distinct(self):
        a = derive_task_seeds(123, 16)
        assert a == derive_task_seeds(123, 16)
        assert len(set(a)) == 16
        assert a[:8] == derive_task_seeds(123, 8)  # prefix-stable

    def test_different_roots_differ(self):
        assert derive_task_seeds(0, 8) != derive_task_seeds(1, 8)

    def test_reseed_independent_of_worker_count(self, tiny_dataset):
        configs = [small_config() for _ in range(4)]
        serial = ExperimentExecutor(max_workers=1).run(
            configs, dataset=tiny_dataset, reseed=99
        )
        parallel = ExperimentExecutor(max_workers=4).run(
            configs, dataset=tiny_dataset, reseed=99
        )
        seeds = derive_task_seeds(99, 4)
        for i, (s, p) in enumerate(zip(serial, parallel)):
            assert_results_equal(s.result, p.result)
            assert s.result.config.seed == seeds[i]


class TestFaultInjection:
    def test_crash_is_retried_and_recorded(self, tmp_path):
        sink = tmp_path / "sink.jsonl"
        tasks = [
            {"value": i, "crash": i == 2, "marker": str(tmp_path / f"m{i}")}
            for i in range(5)
        ]
        executor = ExperimentExecutor(
            max_workers=3, retries=1, backoff=0.01, sink=sink, task_fn=flaky_task
        )
        outcomes = executor.run(tasks)
        assert [o.result for o in outcomes] == [0, 1, 2, 3, 4]
        assert outcomes[2].attempts == 2  # crashed once, retried
        records = [json.loads(line) for line in sink.read_text().splitlines()]
        retries = [r for r in records if r["status"] == "retry"]
        assert len(retries) == 1
        assert "injected worker crash" in retries[0]["error"]
        assert sum(r["status"] == "ok" for r in records) == 5

    def test_exhausted_retries_reported_not_raised(self, tmp_path):
        sink = tmp_path / "sink.jsonl"
        tasks = [{"value": 0, "fail": True, "dir": str(tmp_path)},
                 {"value": 1, "dir": str(tmp_path)}]
        executor = ExperimentExecutor(
            max_workers=2, retries=2, backoff=0.01, sink=sink, task_fn=counting_task
        )
        outcomes = executor.run(tasks)
        assert outcomes[0].status == "error"
        assert outcomes[0].attempts == 3  # 1 try + 2 retries
        assert "injected failure" in outcomes[0].error
        assert outcomes[1].status == "ok"
        # 3 attempts actually executed for the failing task.
        assert len(list(tmp_path.glob("run-0-*"))) == 3
        records = [json.loads(line) for line in sink.read_text().splitlines()]
        assert sum(r["status"] == "retry" for r in records) == 2
        assert sum(r["status"] == "error" for r in records) == 1

    def test_timeout_does_not_abort_sweep(self):
        tasks = [{"value": 0, "sleep": 10.0}] + [{"value": i} for i in range(1, 4)]
        executor = ExperimentExecutor(
            max_workers=2, timeout=0.5, retries=0, task_fn=sleepy_task
        )
        start = time.monotonic()
        outcomes = executor.run(tasks)
        elapsed = time.monotonic() - start
        assert outcomes[0].status == "timeout"
        assert "0.5" in outcomes[0].error
        assert [o.result for o in outcomes[1:]] == [1, 2, 3]
        assert elapsed < 5.0  # nowhere near the 10s sleep

    def test_serial_timeout(self):
        """The serial path enforces timeouts too (SIGALRM, main thread)."""
        executor = ExperimentExecutor(
            max_workers=1, timeout=0.3, retries=0, task_fn=sleepy_task
        )
        outcomes = executor.run([{"value": 0, "sleep": 10.0}, {"value": 1}])
        assert outcomes[0].status == "timeout"
        assert outcomes[1].status == "ok"

    def test_sweep_surfaces_failures(self, tiny_dataset):
        sweep = Sweep(small_config(), {"optimizer": ["sgd", "nonsense"]})
        with pytest.raises(ExecutorError, match="1/2"):
            sweep.run(dataset=tiny_dataset)


class TestResume:
    def test_resume_skips_completed(self, tmp_path):
        sink = tmp_path / "sink.jsonl"
        run_dir = tmp_path / "runs"
        run_dir.mkdir()
        tasks = [
            {"value": i, "fail": i == 1, "dir": str(run_dir)} for i in range(4)
        ]
        executor = ExperimentExecutor(
            max_workers=1, retries=0, sink=sink, task_fn=counting_task
        )
        first = executor.run(tasks)
        assert [o.status for o in first] == ["ok", "error", "ok", "ok"]

        # Second run with the failure "fixed": only task 1 re-executes.
        fixed = [dict(t, fail=False) for t in tasks]
        fixed[1]["fail"] = False
        second = executor.run(fixed, resume=True)
        statuses = [o.status for o in second]
        assert statuses == ["cached", "ok", "cached", "cached"]
        assert [o.result for o in second] == [0, 1, 2, 3]
        assert len(list(run_dir.glob("run-1-*"))) == 2  # failed + fixed
        assert len(list(run_dir.glob("run-0-*"))) == 1  # never re-ran

    def test_resume_ignores_truncated_trailing_line(self, tmp_path):
        sink_path = tmp_path / "sink.jsonl"
        executor = ExperimentExecutor(
            max_workers=1, sink=sink_path, task_fn=double_task
        )
        executor.run([{"value": 1}, {"value": 2}])
        # Simulate a crash mid-append: garbage half-record at the tail.
        with open(sink_path, "a", encoding="utf-8") as f:
            f.write('{"key": "half-written')
        outcomes = executor.run(
            [{"value": 1}, {"value": 2}, {"value": 3}], resume=True
        )
        assert [o.status for o in outcomes] == ["cached", "cached", "ok"]
        assert [o.result for o in outcomes] == [2, 4, 6]

    def test_resume_restores_experiment_results(self, tiny_dataset, tmp_path):
        sink = tmp_path / "sink.jsonl"
        configs = [small_config(seed=s) for s in (0, 1)]
        executor = ExperimentExecutor(max_workers=1, sink=sink)
        first = executor.run(configs, dataset=tiny_dataset)
        second = executor.run(configs, dataset=tiny_dataset, resume=True)
        assert [o.status for o in second] == ["cached", "cached"]
        for f, s in zip(first, second):
            assert_results_equal(f.result, s.result)


class TestJsonlSink:
    def test_completed_keeps_only_ok(self, tmp_path):
        sink = JsonlSink(tmp_path / "s.jsonl")
        sink.append({"key": "a", "status": "retry", "attempts": 1})
        sink.append({"key": "a", "status": "ok", "attempts": 2, "result": None})
        sink.append({"key": "b", "status": "error", "attempts": 1})
        done = sink.completed()
        assert set(done) == {"a"}
        assert done["a"]["attempts"] == 2

    def test_load_missing_file_is_empty(self, tmp_path):
        assert JsonlSink(tmp_path / "absent.jsonl").load() == []

    def test_task_key_stable_for_dicts(self):
        assert task_key({"b": 1, "a": 2}) == task_key({"a": 2, "b": 1})
        assert task_key({"a": 1}) != task_key({"a": 2})


class TestValidation:
    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            ExperimentExecutor(max_workers=0)
        with pytest.raises(ValueError):
            ExperimentExecutor(timeout=0)
        with pytest.raises(ValueError):
            ExperimentExecutor(retries=-1)
        with pytest.raises(ValueError):
            ExperimentExecutor(backoff=-0.1)
        with pytest.raises(ValueError):
            derive_task_seeds(0, -1)


class TestRunExperimentDeterminism:
    """Same seed ⇒ identical training record, for every paper method."""

    @pytest.mark.parametrize("method", PAPER_METHODS)
    def test_history_losses_identical(self, method, tiny_dataset):
        cfg = ExperimentConfig.paper_default(
            method,
            batch_size=1 if method == "alsh" else 10,
            hidden_layers=1,
            hidden_width=8,
            epochs=2,
            seed=3,
        )
        a = run_experiment(cfg, dataset=tiny_dataset)
        b = run_experiment(cfg, dataset=tiny_dataset)
        assert_results_equal(a, b)

    @pytest.mark.parametrize("method", PAPER_METHODS)
    def test_trainer_fit_losses_identical(self, method, tiny_dataset):
        def losses():
            net = MLP([tiny_dataset.input_dim, 8, tiny_dataset.n_classes], seed=0)
            trainer = make_trainer(method, net, lr=1e-3, seed=5)
            history = trainer.fit(
                tiny_dataset.x_train[:80], tiny_dataset.y_train[:80],
                epochs=2, batch_size=1 if method == "alsh" else 10,
            )
            return history.losses()

        np.testing.assert_array_equal(losses(), losses())


def checkpointed_slow_task(task, dataset):
    """Trains with checkpointing; the first attempt hangs after 2 epochs.

    Every trained epoch index is appended to ``epochs.log``, so a test can
    distinguish a retry that resumed from the checkpoint (epochs 0 1 2 3)
    from one that started over (0 1 0 1 2 3).
    """
    d = Path(task["dir"])
    d.mkdir(parents=True, exist_ok=True)
    rng = np.random.default_rng(2)
    x = rng.normal(size=(40, 6))
    y = rng.integers(0, 3, size=40)
    net = MLP([6, 8, 3], seed=0)
    trainer = make_trainer("standard", net, seed=1)

    def logging_schedule(epoch):
        with open(d / "epochs.log", "a", encoding="utf-8") as f:
            f.write(f"{epoch}\n")
        return 1e-2

    first_attempt = not (d / "attempted").exists()
    (d / "attempted").touch()
    history = trainer.fit(
        x, y, epochs=2 if first_attempt else 4, batch_size=10,
        lr_schedule=logging_schedule,
        checkpoint_every=1, checkpoint_dir=d,
    )
    if first_attempt:
        time.sleep(30)  # the per-task timeout fires here
    return len(history.epochs)


class TestRetryTimeouts:
    def test_timeouts_not_retried_by_default(self):
        executor = ExperimentExecutor(
            max_workers=1, timeout=0.3, retries=1, backoff=0.01,
            task_fn=sleepy_task,
        )
        outcomes = executor.run([{"value": 0, "sleep": 10.0}])
        assert outcomes[0].status == "timeout"
        assert outcomes[0].attempts == 1

    def test_timeouts_consume_retry_budget(self):
        executor = ExperimentExecutor(
            max_workers=1, timeout=0.3, retries=1, backoff=0.01,
            retry_timeouts=True, task_fn=sleepy_task,
        )
        outcomes = executor.run([{"value": 0, "sleep": 10.0}])
        assert outcomes[0].status == "timeout"
        assert outcomes[0].attempts == 2  # 1 try + 1 retry, then terminal

    def test_timed_out_task_resumes_from_checkpoint(self, tmp_path):
        """The ISSUE's acceptance scenario: a task killed by the per-task
        timeout mid-training finishes on its retry, resuming from the last
        checkpoint instead of epoch 0."""
        sink = tmp_path / "sink.jsonl"
        run_dir = tmp_path / "run"
        executor = ExperimentExecutor(
            max_workers=1, timeout=2.0, retries=1, backoff=0.01,
            retry_timeouts=True, sink=sink, task_fn=checkpointed_slow_task,
        )
        outcomes = executor.run([{"dir": str(run_dir)}])
        assert outcomes[0].status == "ok"
        assert outcomes[0].attempts == 2
        assert outcomes[0].result == 4  # resumed history spans all 4 epochs
        # Attempt 1 trained epochs 0-1; attempt 2 resumed at 2 — exactly
        # four epoch starts total, none repeated.
        log = (run_dir / "epochs.log").read_text().split()
        assert log == ["0", "1", "2", "3"]
        records = [json.loads(line) for line in sink.read_text().splitlines()]
        retries = [r for r in records if r["status"] == "retry"]
        assert len(retries) == 1
        assert "budget" in retries[0]["error"]


class TestResumeValidation:
    def test_resume_without_sink_rejected(self):
        executor = ExperimentExecutor(max_workers=1, task_fn=double_task)
        with pytest.raises(ValueError, match="resume=True requires a sink"):
            executor.run([{"value": 1}], resume=True)


class TestCheckpointedExperimentTask:
    def test_is_picklable(self, tmp_path):
        import pickle

        task_fn = CheckpointedExperimentTask(tmp_path, every=2)
        clone = pickle.loads(pickle.dumps(task_fn))
        assert clone.directory == str(tmp_path)
        assert clone.every == 2

    def test_invalid_every(self, tmp_path):
        with pytest.raises(ValueError, match="positive"):
            CheckpointedExperimentTask(tmp_path, every=0)

    def test_checkpoints_under_config_tag(self, tiny_dataset, tmp_path):
        cfg = small_config(epochs=2)
        task_fn = CheckpointedExperimentTask(tmp_path)
        first = task_fn(cfg, tiny_dataset)
        ckpt = tmp_path / f"{cfg.checkpoint_tag()}.ckpt.npz"
        assert ckpt.exists()
        # Re-running the same config resumes a finished run: no new epochs,
        # same trained outcome.
        second = task_fn(cfg, tiny_dataset)
        assert_results_equal(first, second)

    def test_executor_integration(self, tiny_dataset, tmp_path):
        configs = [small_config(epochs=2, seed=s) for s in (0, 1)]
        executor = ExperimentExecutor(
            max_workers=1,
            sink=tmp_path / "sink.jsonl",
            task_fn=CheckpointedExperimentTask(tmp_path / "ckpts"),
        )
        outcomes = executor.run(configs, dataset=tiny_dataset)
        assert [o.status for o in outcomes] == ["ok", "ok"]
        stored = sorted(p.name for p in (tmp_path / "ckpts").iterdir())
        assert stored == sorted(
            f"{c.checkpoint_tag()}.ckpt.npz" for c in configs
        )


class TestMetricsExposition:
    def test_prom_file_written_and_parses(self, tiny_dataset, tmp_path):
        """metrics_path turns a sweep into a textfile-collector target:
        the merged trace snapshot plus sweep progress gauges land in an
        atomically replaced .prom file."""
        from repro.obs.export import parse_prometheus

        prom = tmp_path / "metrics" / "sweep.prom"
        configs = [small_config(seed=s) for s in (0, 1)]
        executor = ExperimentExecutor(
            max_workers=1,
            task_fn=run_experiment_traced,
            metrics_path=prom,
        )
        outcomes = executor.run(configs, dataset=tiny_dataset)
        assert [o.status for o in outcomes] == ["ok", "ok"]
        assert prom.exists()
        assert not prom.with_name(prom.name + ".tmp").exists()
        samples = parse_prometheus(prom.read_text(encoding="utf-8"))
        assert samples["repro_sweep_tasks"] == [("", 2.0)]
        assert samples["repro_sweep_done"] == [("", 2.0)]
        assert samples["repro_sweep_failed"] == [("", 0.0)]
        # merged trace counters ride along (both tasks trained 1 epoch)
        assert samples["repro_train_epochs_total"] == [("", 2.0)]

    def test_failures_counted_in_exposition(self, tmp_path):
        from repro.obs.export import parse_prometheus

        prom = tmp_path / "sweep.prom"
        tasks = [
            {"value": 1, "fail": False, "dir": str(tmp_path)},
            {"value": 2, "fail": True, "dir": str(tmp_path)},
        ]
        executor = ExperimentExecutor(
            max_workers=1, retries=0, task_fn=counting_task,
            metrics_path=prom,
        )
        outcomes = executor.run(tasks)
        assert [o.status for o in outcomes] == ["ok", "error"]
        samples = parse_prometheus(prom.read_text(encoding="utf-8"))
        assert samples["repro_sweep_done"] == [("", 2.0)]
        assert samples["repro_sweep_failed"] == [("", 1.0)]
