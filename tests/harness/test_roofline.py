"""Tests for the roofline model."""

import pytest

from repro.harness.roofline import (
    RooflineMachine,
    RooflinePoint,
    method_roofline,
    roofline_table,
)

ARCH = [128, 160, 160, 10]
SAMPLING = dict(keep_prob=0.05, active_frac=0.2, k=10)


class TestMachine:
    def test_validation(self):
        with pytest.raises(ValueError):
            RooflineMachine(peak_gflops=0.0)
        with pytest.raises(ValueError):
            RooflineMachine(bandwidth_gbs=-1.0)

    def test_balance_point(self):
        m = RooflineMachine(peak_gflops=40.0, bandwidth_gbs=20.0)
        assert m.balance_point == pytest.approx(2.0)

    def test_predicted_time_is_max_of_roofs(self):
        m = RooflineMachine(peak_gflops=1.0, bandwidth_gbs=1.0)
        # 2e9 flops at 1 GFLOP/s = 2s; 1e9 bytes at 1 GB/s = 1s → compute.
        assert m.predicted_time(2e9, 1e9) == pytest.approx(2.0)
        assert m.predicted_time(1e8, 3e9) == pytest.approx(3.0)


class TestPoints:
    @pytest.fixture(scope="class")
    def table(self):
        return roofline_table(ARCH, batch=20, **SAMPLING)

    def test_all_methods_present(self, table):
        assert set(table) == {
            "standard", "dropout", "adaptive_dropout", "mc", "alsh", "topk"
        }

    def test_positive_quantities(self, table):
        for point in table.values():
            assert point.flops > 0
            assert point.traffic_bytes > 0
            assert point.predicted_time_s > 0

    def test_intensity_consistent(self, table):
        p = table["standard"]
        assert p.arithmetic_intensity == pytest.approx(
            p.flops / p.traffic_bytes
        )

    def test_dropout_memory_bound(self, table):
        """Column-sliced sampling guts the arithmetic but not the traffic:
        the intensity drops below the balance point."""
        assert not table["dropout"].compute_bound
        assert table["dropout"].arithmetic_intensity < RooflineMachine().balance_point

    def test_flop_saving_collapses_under_roofline(self, table):
        """The headline: dropout's arithmetic speedup vastly exceeds its
        roofline (wall-time) speedup — memory is the real wall (§1)."""
        std, drop = table["standard"], table["dropout"]
        flop_speedup = std.flops / drop.flops
        time_speedup = std.predicted_time_s / drop.predicted_time_s
        assert flop_speedup > 2 * time_speedup

    def test_standard_compute_bound_at_width(self, table):
        assert table["standard"].compute_bound

    def test_unknown_method(self):
        with pytest.raises(ValueError, match="unknown method"):
            method_roofline("slide", ARCH)

    def test_frozen_point(self, table):
        with pytest.raises(Exception):
            table["standard"].flops = 0.0
