"""Tests for ExperimentConfig and the §8.4 paper defaults."""

import pytest

from repro.harness.config import ExperimentConfig


class TestValidation:
    def test_defaults_valid(self):
        cfg = ExperimentConfig()
        assert cfg.method == "standard"
        assert cfg.hidden_layers == 3

    @pytest.mark.parametrize(
        "field,value",
        [
            ("hidden_layers", -1),
            ("hidden_width", 0),
            ("epochs", 0),
            ("batch_size", 0),
            ("data_scale", 0.0),
            ("data_scale", 1.5),
        ],
    )
    def test_invalid_fields(self, field, value):
        with pytest.raises(ValueError):
            ExperimentConfig(**{field: value})


class TestLabels:
    def test_stochastic_label(self):
        cfg = ExperimentConfig(method="mc", batch_size=1)
        assert cfg.is_stochastic
        assert cfg.label() == "mc^S"

    def test_minibatch_label(self):
        cfg = ExperimentConfig(method="alsh", batch_size=20)
        assert not cfg.is_stochastic
        assert cfg.label() == "alsh^M"


class TestOverrides:
    def test_with_overrides_copies(self):
        base = ExperimentConfig()
        changed = base.with_overrides(epochs=7)
        assert changed.epochs == 7
        assert base.epochs != 7 or base is not changed


class TestPaperDefaults:
    def test_alsh_uses_adam(self):
        cfg = ExperimentConfig.paper_default("alsh")
        assert cfg.optimizer == "adam"

    def test_mc_stochastic_lr(self):
        """§9.3: the overfitting fix lowers the stochastic MC lr to 1e-4."""
        s = ExperimentConfig.paper_default("mc", batch_size=1)
        m = ExperimentConfig.paper_default("mc", batch_size=20)
        assert s.lr == pytest.approx(1e-4)
        assert m.lr == pytest.approx(1e-3)
        assert s.method_kwargs["k"] == 10

    def test_dropout_keep_prob(self):
        cfg = ExperimentConfig.paper_default("dropout")
        assert cfg.method_kwargs["keep_prob"] == 0.05

    def test_adaptive_target_keep(self):
        cfg = ExperimentConfig.paper_default("adaptive_dropout")
        assert cfg.method_kwargs["target_keep"] == 0.05

    def test_standard_plain(self):
        cfg = ExperimentConfig.paper_default("standard")
        assert cfg.optimizer == "sgd"
        assert cfg.method_kwargs == {}

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            ExperimentConfig.paper_default("slide")

    def test_overrides_applied(self):
        cfg = ExperimentConfig.paper_default("mc", hidden_layers=5, epochs=2)
        assert cfg.hidden_layers == 5
        assert cfg.epochs == 2
        assert cfg.method_kwargs["k"] == 10

    def test_method_kwargs_merge(self):
        cfg = ExperimentConfig.paper_default(
            "mc", method_kwargs={"node_frac": 0.2}
        )
        assert cfg.method_kwargs == {"k": 10, "node_frac": 0.2}
