"""Tests for timing helpers."""

import time

import pytest

from repro.harness.timing import Timer, time_callable


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009

    def test_reusable(self):
        t = Timer()
        with t:
            pass
        first = t.elapsed
        with t:
            time.sleep(0.005)
        assert t.elapsed >= 0.004
        assert t.elapsed != first or first == 0.0


class TestTimeCallable:
    def test_median_and_min(self):
        median, best = time_callable(lambda: time.sleep(0.002), repeats=3)
        assert best >= 0.0015
        assert median >= best

    def test_invalid_repeats(self):
        with pytest.raises(ValueError):
            time_callable(lambda: None, repeats=0)

    def test_function_actually_called(self):
        calls = []
        time_callable(lambda: calls.append(1), repeats=4)
        assert len(calls) == 4
