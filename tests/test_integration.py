"""Cross-module integration tests reproducing the paper's key findings
at miniature scale.  Each test is one qualitative claim from §9–§10.
"""

import numpy as np
import pytest

from repro import MLP, load_benchmark, make_trainer
from repro.nn.metrics import prediction_entropy
from repro.theory.error_propagation import depth_at_error_ratio


@pytest.fixture(scope="module")
def mnist_small():
    return load_benchmark("mnist", scale=0.01, seed=0)


def _fit(method, data, depth, width=48, epochs=3, batch=20, lr=1e-2, **kw):
    net = MLP([data.input_dim] + [width] * depth + [data.n_classes], seed=0)
    trainer = make_trainer(method, net, lr=lr, seed=1, **kw)
    history = trainer.fit(
        data.x_train, data.y_train, epochs=epochs, batch_size=batch
    )
    return trainer, history


class TestAccuracyFindings:
    def test_standard_learns_all_benchmarks(self):
        """Sanity: the exact baseline beats chance on every benchmark.

        The CIFAR-like set is deliberately the hardest (§8.2 ordering), so
        it gets more data and epochs to clear the bar.
        """
        for name in ("mnist", "fashion", "cifar10"):
            data = load_benchmark(name, scale=0.015, seed=0)
            trainer, _ = _fit("standard", data, depth=1, width=96, epochs=8)
            acc = trainer.evaluate(data.x_test, data.y_test)
            assert acc > 1.5 / data.n_classes, name

    def test_alsh_depth_collapse(self, mnist_small):
        """Figure 7 / Theorem 7.2: ALSH-approx accuracy collapses with
        depth while remaining competitive at depth 1."""
        shallow, _ = _fit("alsh", mnist_small, depth=1, batch=1, lr=1e-3, epochs=2)
        deep, _ = _fit("alsh", mnist_small, depth=6, batch=1, lr=1e-3, epochs=2)
        acc_shallow = shallow.evaluate(mnist_small.x_test, mnist_small.y_test)
        acc_deep = deep.evaluate(mnist_small.x_test, mnist_small.y_test)
        assert acc_shallow > acc_deep + 0.15

    def test_alsh_prediction_entropy_collapse(self, mnist_small):
        """§10.3: deep ALSH-approx predictions concentrate on few labels."""
        shallow, _ = _fit("alsh", mnist_small, depth=1, batch=1, lr=1e-3, epochs=2)
        deep, _ = _fit("alsh", mnist_small, depth=6, batch=1, lr=1e-3, epochs=2)
        e_shallow = prediction_entropy(
            shallow.predict(mnist_small.x_test), mnist_small.n_classes
        )
        e_deep = prediction_entropy(
            deep.predict(mnist_small.x_test), mnist_small.n_classes
        )
        assert e_deep < e_shallow

    def test_mc_scales_with_depth(self, mnist_small):
        """MC-approx (backprop-only approximation) keeps working at the
        depths where ALSH-approx has collapsed."""
        trainer, _ = _fit(
            "mc", mnist_small, depth=6, width=96, epochs=12, k=10
        )
        acc = trainer.evaluate(mnist_small.x_test, mnist_small.y_test)
        assert acc > 0.5

    def test_adaptive_beats_plain_dropout_at_p005(self, mnist_small):
        """Table 2 ordering at the paper's p = 0.05 setting.

        Compared in the stochastic regime (the paper's Dropout^S /
        Adaptive-Dropout^S rows): with 5 % keep rates, minibatch runs at
        this scale make too few updates to separate the methods.
        """
        plain, _ = _fit(
            "dropout", mnist_small, depth=3, epochs=4, batch=1,
            keep_prob=0.05,
        )
        adaptive, _ = _fit(
            "adaptive_dropout", mnist_small, depth=3, epochs=4, batch=1,
            alpha=2.0, target_keep=0.05,
        )
        acc_plain = plain.evaluate(mnist_small.x_test, mnist_small.y_test)
        acc_adaptive = adaptive.evaluate(mnist_small.x_test, mnist_small.y_test)
        assert acc_adaptive > acc_plain


class TestTimingFindings:
    def test_alsh_slowest_sequentially(self, mnist_small):
        """Table 3: without parallelism ALSH-approx is the slowest method
        (its speed in [50] comes from multiprocessing)."""
        subset = 120
        x = mnist_small.x_train[:subset]
        y = mnist_small.y_train[:subset]

        def epoch_time(method, batch, **kw):
            net = MLP([mnist_small.input_dim, 48, 48, 48, 10], seed=0)
            trainer = make_trainer(method, net, lr=1e-3, seed=1, **kw)
            history = trainer.fit(x, y, epochs=1, batch_size=batch)
            return history.total_time

        t_alsh = epoch_time("alsh", 1, optimizer="adam")
        t_standard = epoch_time("standard", 1)
        assert t_alsh > t_standard

    def test_mc_overhead_visible_in_stochastic_setting(self, mnist_small):
        """§9.3 / Table 3: at batch size 1 MC-approx's probability machinery
        is overhead — it cannot beat standard training."""
        subset = 100
        x = mnist_small.x_train[:subset]
        y = mnist_small.y_train[:subset]

        def epoch_time(method):
            net = MLP([mnist_small.input_dim, 64, 64, 64, 10], seed=0)
            trainer = make_trainer(method, net, lr=1e-4, seed=1)
            return trainer.fit(x, y, epochs=1, batch_size=1).total_time

        assert epoch_time("mc") > epoch_time("standard")

    def test_backward_dominates_forward_for_standard(self, mnist_small):
        """§10.1: backpropagation takes longer than the feedforward step.

        Width 256 keeps the GEMMs large enough that the per-phase timers
        measure arithmetic rather than scheduler noise.
        """
        _, history = _fit("standard", mnist_small, depth=3, width=256, epochs=1)
        assert history.backward_times().sum() > history.forward_times().sum()


class TestTheoryIntegration:
    def test_theory_predicts_observed_collapse_depth(self):
        """The closed form says error dominates at depth 4 (c = 5); our
        empirical ALSH collapse (tests above) happens in that regime."""
        assert depth_at_error_ratio(5.0, 1.0) == 4
