"""Tests for the unbiased-estimator variance-propagation theory."""

import numpy as np
import pytest

from repro.nn.network import MLP
from repro.theory.mc_propagation import (
    depth_at_relative_variance,
    measure_mc_forward_error,
    relative_variance_growth,
)


class TestClosedForm:
    def test_zero_noise_zero_growth(self):
        assert relative_variance_growth(0.0, 10) == 0.0

    def test_single_layer_is_rho(self):
        assert relative_variance_growth(0.3, 1) == pytest.approx(0.3)

    def test_exponential_shape(self):
        """Matches Theorem 7.2's structure: constant multiplicative rate."""
        rho = 0.2
        for k in range(1, 8):
            growth = (1 + relative_variance_growth(rho, k + 1)) / (
                1 + relative_variance_growth(rho, k)
            )
            assert growth == pytest.approx(1 + rho)

    def test_monotone_in_depth_and_noise(self):
        assert relative_variance_growth(0.2, 5) > relative_variance_growth(0.2, 2)
        assert relative_variance_growth(0.4, 3) > relative_variance_growth(0.1, 3)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            relative_variance_growth(-0.1, 2)
        with pytest.raises(ValueError):
            relative_variance_growth(0.1, -1)


class TestDepthThreshold:
    def test_minimal_depth(self):
        rho = 0.2
        k = depth_at_relative_variance(rho, 1.0)
        assert relative_variance_growth(rho, k) >= 1.0
        assert relative_variance_growth(rho, k - 1) < 1.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            depth_at_relative_variance(0.0)
        with pytest.raises(ValueError):
            depth_at_relative_variance(0.5, threshold=0.0)


class TestMeasurement:
    @pytest.fixture(scope="class")
    def net(self):
        return MLP([32] + [48] * 5 + [4], seed=0)

    def test_shape(self, net, rng):
        errors = measure_mc_forward_error(
            net, rng.normal(size=(5, 32)), budget_frac=0.5, n_trials=3
        )
        assert errors.shape == (5,)

    def test_error_compounds_with_depth(self, net, rng):
        """The §10.1 failure mechanism: even the unbiased estimator's
        forward error grows through the chain."""
        errors = measure_mc_forward_error(
            net, rng.normal(size=(10, 32)), budget_frac=0.3, n_trials=8, seed=1
        )
        assert errors[-1] > errors[0]

    def test_bigger_budget_smaller_error(self, net, rng):
        x = rng.normal(size=(8, 32))
        small = measure_mc_forward_error(net, x, budget_frac=0.2, n_trials=6, seed=2)
        large = measure_mc_forward_error(net, x, budget_frac=0.8, n_trials=6, seed=2)
        assert large.mean() < small.mean()

    def test_full_budget_exact(self, net, rng):
        errors = measure_mc_forward_error(
            net, rng.normal(size=(4, 32)), budget_frac=1.0, n_trials=2
        )
        np.testing.assert_allclose(errors, 0.0, atol=1e-10)

    def test_validation(self, net, rng):
        x = rng.normal(size=(2, 32))
        with pytest.raises(ValueError):
            measure_mc_forward_error(net, x, budget_frac=0.0)
        with pytest.raises(ValueError):
            measure_mc_forward_error(net, x, n_trials=0)
        shallow = MLP([8, 3], seed=0)
        with pytest.raises(ValueError):
            measure_mc_forward_error(shallow, rng.normal(size=(2, 8)))
