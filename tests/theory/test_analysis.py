"""Tests for the empirical layerwise error measurement."""

import numpy as np
import pytest

from repro.core.alsh_approx import ALSHApproxTrainer
from repro.nn.network import MLP
from repro.theory.analysis import (
    make_alsh_selector,
    make_random_selector,
    make_topk_selector,
    measure_layerwise_error,
)


@pytest.fixture
def net():
    return MLP([16] + [32] * 4 + [3], seed=0)


class TestSelectors:
    def test_topk_budget(self, net, rng):
        selector = make_topk_selector(net, 0.25)
        cols = selector(0, rng.normal(size=16))
        assert cols.size == 8

    def test_topk_actually_top(self, net, rng):
        selector = make_topk_selector(net, 0.25)
        a = rng.normal(size=16)
        cols = set(selector(0, a).tolist())
        scores = np.abs(a @ net.layers[0].W)
        true_top = set(np.argsort(-scores)[:8].tolist())
        assert cols == true_top

    def test_random_selector_budget(self, net, rng):
        selector = make_random_selector(net, 0.5, seed=1)
        assert selector(1, rng.normal(size=32)).size == 16

    def test_invalid_fracs(self, net):
        with pytest.raises(ValueError):
            make_topk_selector(net, 0.0)
        with pytest.raises(ValueError):
            make_random_selector(net, 1.5)

    def test_alsh_selector_wraps_trainer(self, net, rng):
        trainer = ALSHApproxTrainer(net, seed=2)
        selector = make_alsh_selector(trainer)
        cols = selector(0, rng.normal(size=16))
        assert cols.size >= 1
        assert (cols < 32).all()


class TestMeasurement:
    def test_full_budget_zero_error(self, net, rng):
        selector = make_topk_selector(net, 1.0)
        errors = measure_layerwise_error(net, selector, rng.normal(size=(5, 16)))
        np.testing.assert_allclose(errors, 0.0, atol=1e-10)

    def test_errors_grow_with_depth(self, net, rng):
        """The §7 compounding shows up empirically even for the oracle
        selector on a ReLU network."""
        selector = make_topk_selector(net, 0.4)
        errors = measure_layerwise_error(net, selector, rng.normal(size=(20, 16)))
        assert errors[-1] > errors[0]

    def test_topk_beats_random(self, net, rng):
        """MIPS-style selection is strictly better than blind sampling at
        the same budget."""
        x = rng.normal(size=(20, 16))
        topk = measure_layerwise_error(net, make_topk_selector(net, 0.3), x)
        random = measure_layerwise_error(
            net, make_random_selector(net, 0.3, seed=3), x
        )
        assert topk.mean() < random.mean()

    def test_output_shape(self, net, rng):
        errors = measure_layerwise_error(
            net, make_topk_selector(net, 0.5), rng.normal(size=(3, 16))
        )
        assert errors.shape == (4,)

    def test_no_hidden_layers_rejected(self, rng):
        shallow = MLP([8, 3], seed=0)
        with pytest.raises(ValueError):
            measure_layerwise_error(
                shallow, make_topk_selector(shallow, 0.5), rng.normal(size=(2, 8))
            )
