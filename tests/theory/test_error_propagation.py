"""Tests for the §7 theory: Lemma 7.1 recursion and Theorem 7.2 closed form."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.theory.error_propagation import (
    LinearErrorModel,
    depth_at_error_ratio,
    error_ratio,
    error_ratio_table,
)


class TestClosedForm:
    def test_paper_table_values(self):
        """Reproduce the §7 table exactly: c=5, k=1..6 →
        0.2, 0.44, 0.72, 1.07, 1.48, 1.98."""
        table = error_ratio_table(c=5.0, max_k=6)
        np.testing.assert_allclose(
            np.round(table, 2), [0.2, 0.44, 0.73, 1.07, 1.49, 1.99], atol=0.011
        )

    def test_zero_depth_zero_error(self):
        assert error_ratio(5.0, 0) == 0.0

    def test_monotone_in_depth(self):
        ratios = [error_ratio(5.0, k) for k in range(1, 10)]
        assert ratios == sorted(ratios)

    def test_exponential_growth(self):
        """Successive ratios of (1 + ε/â) must be constant = (c+1)/c."""
        c = 3.0
        for k in range(1, 8):
            growth = (1 + error_ratio(c, k + 1)) / (1 + error_ratio(c, k))
            assert growth == pytest.approx((c + 1) / c)

    def test_larger_c_smaller_error(self):
        """Better active-node coverage (larger c) shrinks the error."""
        assert error_ratio(10.0, 4) < error_ratio(5.0, 4) < error_ratio(2.0, 4)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            error_ratio(0.0, 3)
        with pytest.raises(ValueError):
            error_ratio(5.0, -1)


class TestDepthThreshold:
    def test_paper_claim_depth_4(self):
        """'As soon as the depth gets larger than 3, the estimation error
        dominates the estimation value' — threshold crossed at k = 4."""
        assert depth_at_error_ratio(5.0, threshold=1.0) == 4

    def test_threshold_consistency(self):
        c = 5.0
        k = depth_at_error_ratio(c, threshold=1.0)
        assert error_ratio(c, k) >= 1.0
        assert error_ratio(c, k - 1) < 1.0

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            depth_at_error_ratio(5.0, threshold=0.0)

    @settings(max_examples=30)
    @given(st.floats(0.5, 20.0), st.floats(0.1, 5.0))
    def test_property_threshold_is_minimal(self, c, threshold):
        k = depth_at_error_ratio(c, threshold)
        assert error_ratio(c, k) >= threshold - 1e-9
        if k > 1:
            assert error_ratio(c, k - 1) < threshold + 1e-9


class TestLemmaRecursionSimulator:
    def test_full_active_set_no_error(self, rng):
        weights = [rng.normal(size=(6, 6)) for _ in range(4)]
        model = LinearErrorModel(weights, active_frac=1.0)
        _, _, errors = model.run(rng.normal(size=6))
        for err in errors:
            np.testing.assert_allclose(err, 0.0, atol=1e-10)

    def test_lemma_first_layer_error(self, rng):
        """Layer-1 error must equal the sum over inactive nodes of x_i W_i1
        (Lemma 7.1, k=1 branch)."""
        w = rng.normal(size=(8, 3))
        x = rng.normal(size=8)
        keep = 4

        def selector(layer, node, contrib):
            return np.argpartition(-np.abs(contrib), keep - 1)[:keep]

        model = LinearErrorModel([w], selector=selector)
        _, _, errors = model.run(x)
        for j in range(3):
            contrib = x * w[:, j]
            active = set(selector(0, j, contrib).tolist())
            inactive = [i for i in range(8) if i not in active]
            assert errors[0][j] == pytest.approx(contrib[inactive].sum(), abs=1e-10)

    def test_theorem_constant_c_construction(self):
        """On an all-ones network where exactly half the incoming mass is
        kept, c = 1 and the closed form a^k = â^k · 2^k must hold."""
        n = 8
        weights = [np.ones((n, n)) for _ in range(4)]
        x = np.ones(n)

        def selector(layer, node, contrib):
            return np.arange(n // 2)  # keep half: active sum == inactive sum

        model = LinearErrorModel(weights, selector=selector)
        exact, estimates, _ = model.run(x)
        for k in range(4):
            ratio = exact[k][0] / estimates[k][0]
            assert ratio == pytest.approx(2.0 ** (k + 1), rel=1e-9)

    def test_error_ratios_grow_with_depth(self, rng):
        """Even with oracle top-k selection, relative error compounds."""
        weights = [rng.normal(size=(20, 20)) / np.sqrt(20) for _ in range(5)]
        model = LinearErrorModel(weights, active_frac=0.5)
        ratios = model.error_ratios(rng.normal(size=20))
        # Not necessarily monotone sample-by-sample, but the deep end must
        # exceed the shallow end.
        assert ratios[-1] > ratios[0]

    def test_chained_shape_validation(self, rng):
        with pytest.raises(ValueError):
            LinearErrorModel([rng.normal(size=(4, 5)), rng.normal(size=(4, 5))])

    def test_input_dim_validation(self, rng):
        model = LinearErrorModel([rng.normal(size=(4, 3))])
        with pytest.raises(ValueError):
            model.run(rng.normal(size=7))

    def test_invalid_active_frac(self, rng):
        with pytest.raises(ValueError):
            LinearErrorModel([rng.normal(size=(4, 3))], active_frac=0.0)
