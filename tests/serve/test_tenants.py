"""Multi-tenant head cache: LRU policy from memsim, counters, stats."""

import pytest

from repro.obs import InMemoryRecorder
from repro.obs.counters import (
    SERVE_TENANT_EVICTIONS,
    SERVE_TENANT_HITS,
    SERVE_TENANT_MISSES,
    SERVE_TENANT_RESIDENT,
)
from repro.serve.tenants import TenantHeadCache


def _cache(capacity, recorder=None, loads=None):
    loads = loads if loads is not None else []

    def loader(tenant):
        loads.append(tenant)
        return f"head-of-{tenant}"

    return TenantHeadCache(
        capacity, loader, recorder=recorder or InMemoryRecorder()
    ), loads


class TestLRUPolicy:
    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            _cache(0)

    def test_miss_loads_hit_reuses(self):
        cache, loads = _cache(2)
        assert cache.get("a") == "head-of-a"
        assert cache.get("a") == "head-of-a"
        assert loads == ["a"]
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_evicts_least_recently_used(self):
        cache, _ = _cache(2)
        cache.get("a")
        cache.get("b")
        cache.get("a")       # a is now most recent
        cache.get("c")       # evicts b, the LRU
        assert cache.resident() == ["a", "c"]
        assert "b" not in cache
        assert cache.evictions == 1

    def test_reload_after_eviction_is_a_miss(self):
        cache, loads = _cache(1)
        cache.get("a")
        cache.get("b")
        cache.get("a")
        assert loads == ["a", "b", "a"]
        assert cache.misses == 3 and cache.hits == 0

    def test_never_exceeds_capacity(self):
        cache, _ = _cache(3)
        for i in range(20):
            cache.get(f"t{i % 7}")
            assert len(cache) <= 3

    def test_skewed_traffic_hits(self):
        cache, _ = _cache(2)
        for tenant in ["hot", "hot", "cold1", "hot", "cold2", "hot"]:
            cache.get(tenant)
        assert cache.hits >= 3  # the hot tenant stays resident
        assert "hot" in cache


class TestObservability:
    def test_counters_and_gauge(self):
        recorder = InMemoryRecorder()
        cache, _ = _cache(2, recorder=recorder)
        for tenant in ["a", "b", "a", "c", "a"]:
            cache.get(tenant)
        snapshot = recorder.snapshot()
        assert snapshot["counters"][SERVE_TENANT_HITS] == cache.hits
        assert snapshot["counters"][SERVE_TENANT_MISSES] == cache.misses
        assert snapshot["counters"][SERVE_TENANT_EVICTIONS] == cache.evictions
        assert snapshot["gauges"][SERVE_TENANT_RESIDENT] <= 2

    def test_stats_view(self):
        cache, _ = _cache(2)
        cache.get("a")
        cache.get("a")
        stats = cache.stats()
        assert stats["capacity"] == 2
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == pytest.approx(0.5)
        assert 0.0 <= stats["model_miss_rate"] <= 1.0

    def test_loader_failure_leaves_cache_consistent(self):
        calls = {"n": 0}

        def loader(tenant):
            calls["n"] += 1
            if tenant == "bad":
                raise IOError("checkpoint missing")
            return tenant.upper()

        cache = TenantHeadCache(2, loader)
        cache.get("a")
        with pytest.raises(IOError):
            cache.get("bad")
        # The failed tenant is not resident; good tenants still work.
        assert "bad" not in cache
        assert cache.get("a") == "A"
