"""Shared machinery for the serving-layer tests.

The batcher tests run the :class:`MicroBatcher` with ``start_worker=
False`` and a scripted :class:`FakeClock`, so every deadline and
batch-formation path is exercised deterministically — no sleeps, no
thread races.  The fault-injection and e2e tests use the real threaded
worker on purpose.
"""

import numpy as np
import pytest

from repro.serve.server import seeded_servable


class FakeClock:
    """A monotonic clock the test advances by hand."""

    def __init__(self, start: float = 100.0):
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> float:
        self.now += float(dt)
        return self.now


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture(scope="session")
def small_model():
    """A tiny MLP servable: fast forwards, enough classes for top-k."""
    return seeded_servable(
        input_dim=12, hidden=16, depth=2, classes=8, seed=3, name="small"
    )


@pytest.fixture(scope="session")
def golden_model():
    """The bench-shape golden model the recall acceptance test runs on.

    Session-scoped: the paper-shape trunk plus the narrow-embedding
    output is the expensive part of the serving tests.
    """
    from repro.serve.bench import MODEL_SHAPE

    return seeded_servable(seed=0, name="golden", **MODEL_SHAPE)


def echo_handler(batch: np.ndarray) -> np.ndarray:
    """Identity-with-markers handler: row i answers with its own row."""
    return np.asarray(batch) * 2.0
