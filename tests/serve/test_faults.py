"""Fault injection: crashing and slow handlers degrade, never deadlock.

These tests run the real worker thread on purpose — the guarantee under
test is that overload and handler failure leave the server *answering*
(with errors or 429s), not wedged.  Every ``result`` call carries a
timeout, so a regression shows up as a test failure, not a hang.
"""

import threading
import time

import numpy as np
import pytest

from repro.obs import InMemoryRecorder
from repro.obs.counters import SERVE_HANDLER_ERRORS, SERVE_SHED_QUEUE_FULL
from repro.serve.batcher import (
    MicroBatcher,
    ServeError,
    ServerClosed,
    ServerOverloaded,
)

from .conftest import echo_handler

RESULT_TIMEOUT = 10.0


class TestCrashingHandler:
    def test_crash_fails_batch_but_worker_survives(self):
        calls = {"n": 0}

        def flaky(batch):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("kaboom")
            return echo_handler(batch)

        recorder = InMemoryRecorder()
        with MicroBatcher(
            flaky, max_batch=2, max_wait=0.001, recorder=recorder
        ) as batcher:
            first = [batcher.submit([1.0]), batcher.submit([2.0])]
            for request in first:
                with pytest.raises(ServeError, match="kaboom"):
                    request.result(RESULT_TIMEOUT)
            # The worker must still be alive and serving.
            second = [batcher.submit([3.0]), batcher.submit([4.0])]
            np.testing.assert_array_equal(
                second[0].result(RESULT_TIMEOUT), [6.0]
            )
            np.testing.assert_array_equal(
                second[1].result(RESULT_TIMEOUT), [8.0]
            )
        assert recorder.get(SERVE_HANDLER_ERRORS) == 1

    def test_crash_only_fails_its_own_batch(self):
        def crash_on_marker(batch):
            if np.any(batch < 0):
                raise ValueError("poisoned batch")
            return echo_handler(batch)

        with MicroBatcher(
            crash_on_marker, max_batch=1, max_wait=0.0
        ) as batcher:
            bad = batcher.submit([-1.0])
            good = batcher.submit([5.0])
            with pytest.raises(ServeError):
                bad.result(RESULT_TIMEOUT)
            np.testing.assert_array_equal(good.result(RESULT_TIMEOUT), [10.0])


class TestSlowHandler:
    def test_overload_sheds_instead_of_queueing_unboundedly(self):
        def slow(batch):
            time.sleep(0.02)
            return echo_handler(batch)

        recorder = InMemoryRecorder()
        batcher = MicroBatcher(
            slow, max_batch=4, max_wait=0.001, max_queue=8, recorder=recorder
        )
        accepted, shed = [], 0
        for i in range(200):
            try:
                accepted.append(batcher.submit([float(i)]))
            except ServerOverloaded:
                shed += 1
        assert shed > 0, "a 5x-oversubscribed queue must shed"
        # Every accepted request completes; nothing hangs.
        for request in accepted:
            request.result(RESULT_TIMEOUT)
        batcher.close()
        assert recorder.get(SERVE_SHED_QUEUE_FULL) == shed

    def test_deadlines_shed_stale_requests_under_slow_handler(self):
        def slow(batch):
            time.sleep(0.05)
            return echo_handler(batch)

        batcher = MicroBatcher(
            slow, max_batch=1, max_wait=0.0, max_queue=64,
            default_deadline=0.06,
        )
        requests = [batcher.submit([float(i)]) for i in range(8)]
        outcomes = {"served": 0, "expired": 0}
        for request in requests:
            try:
                request.result(RESULT_TIMEOUT)
                outcomes["served"] += 1
            except ServeError:
                outcomes["expired"] += 1
        batcher.close()
        # The head of the line is served fresh; the tail expired instead
        # of being served stale (8 x 50ms handler vs 60ms deadlines).
        assert outcomes["served"] >= 1
        assert outcomes["expired"] >= 1
        assert outcomes["served"] + outcomes["expired"] == 8

    def test_close_during_slow_batch_drains_cleanly(self):
        def slow(batch):
            time.sleep(0.03)
            return echo_handler(batch)

        batcher = MicroBatcher(slow, max_batch=2, max_wait=0.001)
        requests = [batcher.submit([float(i)]) for i in range(6)]
        batcher.close(drain=True)
        for i, request in enumerate(requests):
            np.testing.assert_array_equal(
                request.result(RESULT_TIMEOUT), [2.0 * i]
            )

    def test_close_without_drain_fails_fast(self):
        started = threading.Event()

        def slow(batch):
            started.set()
            time.sleep(0.05)
            return echo_handler(batch)

        batcher = MicroBatcher(slow, max_batch=1, max_wait=0.0, max_queue=64)
        requests = [batcher.submit([float(i)]) for i in range(20)]
        started.wait(RESULT_TIMEOUT)
        batcher.close(drain=False)
        outcomes = {"served": 0, "closed": 0}
        for request in requests:
            try:
                request.result(RESULT_TIMEOUT)
                outcomes["served"] += 1
            except ServerClosed:
                outcomes["closed"] += 1
        # In-flight work may finish, but the queued tail fails fast
        # rather than being served after shutdown.
        assert outcomes["closed"] > 0
        assert outcomes["served"] + outcomes["closed"] == 20

    def test_close_is_idempotent(self):
        batcher = MicroBatcher(echo_handler, max_batch=2, max_wait=0.001)
        batcher.close()
        batcher.close()
