"""Serving telemetry: bounded latency memory and bitwise no-op proof.

Two acceptance criteria from the live-telemetry work land here:

* the server's latency accounting is O(buckets) — a ≥10k-request load
  leaves the same fixed bucket array a 10-request load does, while
  ``stats()`` keeps its public keys and a documented error bound;
* attaching the full telemetry stack (recorder + request tracer +
  /metrics exporter scraping mid-flight) cannot change a single bit of
  any answer.
"""

import urllib.request

import numpy as np

from repro.obs import NULL_RECORDER, InMemoryRecorder, RequestTracer
from repro.obs.counters import HIST_SERVE_LATENCY, HIST_SERVE_QUEUE_WAIT
from repro.obs.export import MetricsServer, parse_prometheus
from repro.obs.histogram import DEFAULT_BUCKETS
from repro.obs.tracectx import NULL_TRACER
from repro.serve.server import InferenceServer, run_smoke


def _drive(server, xs, chunk=64):
    """Submit every row through the synchronous run_once dispatch path."""
    def drain(pending):
        while server.run_once(force=True):
            pass
        results.extend(req.result(5.0) for req in pending)
        pending.clear()

    results = []
    pending = []
    for row in xs:
        pending.append(server.submit(row))
        if len(pending) >= chunk:
            drain(pending)
    drain(pending)
    return results


class TestBoundedLatencyMemory:
    def test_10k_requests_leave_o_buckets_state(self, small_model):
        """Regression for the unbounded `latencies` list: serving 10k
        requests must not grow per-request state anywhere."""
        n = 10_500
        rng = np.random.default_rng(0)
        xs = rng.normal(size=(n, small_model.input_dim))
        recorder = InMemoryRecorder()
        server = InferenceServer(
            small_model, max_batch=64, max_wait=0.0, max_queue=n + 1,
            recorder=recorder, start_worker=False,
        )
        _drive(server, xs)
        latency = server.batcher.latency
        assert latency.count == n
        # the whole latency state is one fixed-size bucket array
        assert len(latency.counts) == DEFAULT_BUCKETS + 2
        assert not hasattr(server.batcher, "latencies")
        # the recorder's copy is the same bounded object, not a second
        # accounting of 10k samples
        assert recorder.get_histogram(HIST_SERVE_LATENCY) is latency
        assert len(
            recorder.snapshot()["histograms"][HIST_SERVE_LATENCY]["counts"]
        ) <= DEFAULT_BUCKETS + 2
        server.close()

    def test_stats_keys_and_error_bound_documented(self, small_model):
        rng = np.random.default_rng(1)
        xs = rng.normal(size=(128, small_model.input_dim))
        server = InferenceServer(
            small_model, max_batch=32, max_wait=0.0, max_queue=256,
            start_worker=False,
        )
        _drive(server, xs)
        stats = server.stats()
        # public surface unchanged by the histogram rewrite
        assert set(stats) == {
            "served", "queue_depth", "latency_p50", "latency_p99"
        }
        assert stats["served"] == 128
        assert stats["queue_depth"] == 0
        # estimates are clamped into the observed range, so they are
        # real latencies (positive, p50 <= p99 up to one bucket width)
        assert 0 < stats["latency_p50"] <= stats["latency_p99"] * 1.149
        assert "error" in InferenceServer.stats.__doc__  # documented bound
        server.close()


class TestTelemetryIsBitwiseNoOp:
    def test_answers_identical_with_full_telemetry_attached(self, small_model):
        rng = np.random.default_rng(2)
        xs = rng.normal(size=(96, small_model.input_dim))

        def serve(recorder, tracer, scrape=False):
            server = InferenceServer(
                small_model, max_batch=16, max_wait=0.0, max_queue=256,
                pad_batches=True, backend="reference",
                recorder=recorder, tracer=tracer, start_worker=False,
            )
            metrics = None
            if scrape:
                metrics = MetricsServer(recorder.snapshot, port=0)
            out = _drive(server, xs, chunk=16)
            if metrics is not None:
                with urllib.request.urlopen(
                    metrics.url + "/metrics", timeout=5.0
                ) as resp:
                    parse_prometheus(resp.read().decode("utf-8"))
                metrics.close()
            server.close()
            return out

        bare = serve(NULL_RECORDER, NULL_TRACER)
        traced = serve(InMemoryRecorder(), RequestTracer(), scrape=True)
        assert len(bare) == len(traced)
        for a, b in zip(bare, traced):
            np.testing.assert_array_equal(a, b)


class TestSmokeWithTelemetry:
    def test_run_smoke_scrapes_and_stores(self, tmp_path, capsys):
        store = tmp_path / "serve.jsonl"
        assert run_smoke(
            requests=120, seed=0, metrics_port=0, store=store
        ) == 0
        out = capsys.readouterr().out
        assert "metrics: scraped" in out
        assert "healthz 200" in out
        from repro.obs.sink import read_traces, scan_jsonl
        from repro.obs.tracectx import read_trace_events

        assert len(read_traces(store)) >= 1  # the snapshot record
        records, corrupt = scan_jsonl(store)
        assert corrupt == 0
        events = read_trace_events(records)
        assert any(e.get("event") == "completed" for e in events)

    def test_queue_wait_histogram_populated(self, small_model):
        recorder = InMemoryRecorder()
        server = InferenceServer(
            small_model, max_batch=8, max_wait=0.0, max_queue=64,
            recorder=recorder, start_worker=False,
        )
        rng = np.random.default_rng(3)
        _drive(server, rng.normal(size=(32, small_model.input_dim)), chunk=8)
        snap = recorder.snapshot()["histograms"]
        assert snap[HIST_SERVE_QUEUE_WAIT]["count"] == 32
        server.close()
