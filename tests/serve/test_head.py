"""ALSH top-k head: equivalence, recall golden, skipped-GEMM proof.

The acceptance tests for the serving head:

* whenever the true top-k all appear in the LSH candidate set, the
  head's answer is *exactly* brute force (property, many seeds);
* on the seeded bench-shape golden model the head reaches >= 0.95
  recall@10 with its serving defaults;
* the FLOP counters prove the full output GEMM never ran on the
  candidate path.
"""

import numpy as np
import pytest

from repro.backend import ReferenceBackend, use_backend
from repro.backend.instrument import InstrumentedBackend
from repro.lsh.mips import exact_mips_batch
from repro.nn.network import MLP
from repro.obs import InMemoryRecorder
from repro.obs.counters import (
    SERVE_HEAD_CANDIDATES,
    SERVE_HEAD_FALLBACKS,
    SERVE_HEAD_QUERIES,
    gemm_flops,
)
from repro.obs.probes import ProbeManager
from repro.obs.timeseries import SERIES_SERVE_HEAD_RECALL, series_points
from repro.serve.head import ALSHTopKHead, HeadRecallProbe, head_recall


def _layer(n_in, n_out, seed):
    return MLP([n_in, n_out], seed=seed).layers[0]


class TestEquivalenceProperty:
    @pytest.mark.parametrize("seed", range(5))
    def test_exact_when_topk_within_candidates(self, seed):
        """Head answer == brute force whenever candidates cover the truth."""
        rng = np.random.default_rng(seed)
        layer = _layer(10, 24, seed)
        head = ALSHTopKHead(layer, k=4, n_bits=3, n_tables=8, seed=seed)
        h = rng.normal(size=(16, 10))
        truth = exact_mips_batch(head._aug_cols, head._augment(h), 4)
        ids, logits = head.topk(h)
        exact_ids, exact_logits = head.exact_topk(h)
        covered = 0
        for i, cand in enumerate(head.candidates(h, record=False)):
            if not set(truth[i]).issubset(set(cand.tolist())):
                continue
            covered += 1
            np.testing.assert_array_equal(ids[i], exact_ids[i])
            np.testing.assert_allclose(logits[i], exact_logits[i], rtol=1e-12)
        assert covered > 0, "property never exercised — candidates too small"

    def test_exact_flag_matches_brute_force_bitwise(self):
        layer = _layer(8, 12, 0)
        head = ALSHTopKHead(layer, k=3, seed=0)
        h = np.random.default_rng(1).normal(size=(5, 8))
        ids, logits = head.topk(h, exact=True)
        exact_ids, exact_logits = head.exact_topk(h)
        np.testing.assert_array_equal(ids, exact_ids)
        np.testing.assert_array_equal(logits, exact_logits)

    def test_logits_are_bias_inclusive(self):
        """Ranking must use h·w + b, not the inner product alone."""
        layer = _layer(6, 10, 2)
        layer.b = np.linspace(-5.0, 5.0, 10)  # bias dominates the ranking
        head = ALSHTopKHead(layer, k=2, n_bits=2, n_tables=12, seed=0)
        h = np.random.default_rng(3).normal(size=(8, 6)) * 0.01
        ids, logits = head.topk(h, exact=True)
        expected = h @ layer.W + layer.b
        for i in range(8):
            np.testing.assert_allclose(
                logits[i], np.sort(expected[i])[::-1][:2], rtol=1e-12
            )
            assert ids[i, 0] == int(np.argmax(expected[i]))


class TestFallbacks:
    def test_small_candidate_sets_fall_back_to_exact(self):
        layer = _layer(6, 32, 1)
        # Many bits, one table: candidate sets are tiny, k is large.
        recorder = InMemoryRecorder()
        head = ALSHTopKHead(
            layer, k=16, n_bits=8, n_tables=1, seed=0, recorder=recorder
        )
        h = np.random.default_rng(4).normal(size=(6, 6))
        ids, logits = head.topk(h)
        exact_ids, exact_logits = head.exact_topk(h)
        fallbacks = recorder.get(SERVE_HEAD_FALLBACKS)
        assert fallbacks > 0, "tiny candidate sets must trigger fallback"
        np.testing.assert_array_equal(ids[:, 0], exact_ids[:, 0])

    def test_k_validation(self):
        head = ALSHTopKHead(_layer(4, 6, 0), k=2, seed=0)
        with pytest.raises(ValueError):
            head.topk(np.zeros((1, 4)), k=0)
        with pytest.raises(ValueError):
            head.topk(np.zeros((1, 4)), k=7)
        with pytest.raises(ValueError):
            ALSHTopKHead(_layer(4, 6, 0), k=0)


class TestGoldenRecall:
    def test_recall_at_10_meets_acceptance_floor(self, golden_model):
        """>= 0.95 recall@10 on the seeded golden model, serving defaults."""
        head = ALSHTopKHead(golden_model.output_layer(), k=10, seed=0)
        rng = np.random.default_rng(7)
        queries = golden_model.trunk_forward(
            rng.normal(size=(128, golden_model.input_dim))
        )
        recall = head_recall(head, queries, 10)
        assert recall >= 0.95, f"golden recall@10 {recall:.3f} below 0.95"

    def test_recall_is_deterministic(self, golden_model):
        head = ALSHTopKHead(golden_model.output_layer(), k=10, seed=0)
        rng = np.random.default_rng(7)
        queries = golden_model.trunk_forward(
            rng.normal(size=(32, golden_model.input_dim))
        )
        assert head_recall(head, queries) == head_recall(head, queries)


class TestSkippedGEMM:
    def test_candidate_path_skips_full_output_gemm(self, golden_model):
        """FLOP counters prove the head never ran the output GEMM."""
        layer = golden_model.output_layer()
        head = ALSHTopKHead(layer, k=10, seed=0)
        rng = np.random.default_rng(11)
        h = golden_model.trunk_forward(
            rng.normal(size=(16, golden_model.input_dim))
        )
        recorder = InMemoryRecorder()
        backend = InstrumentedBackend(ReferenceBackend(), recorder)
        with use_backend(backend):
            head.topk(h)
        counters = recorder.snapshot()["counters"]
        assert "kernel.flops.matmul_add_bias" not in counters, (
            "the full output GEMM ran on the candidate path"
        )
        full_gemm = gemm_flops(h.shape[0], layer.W.shape[0], layer.W.shape[1])
        assert 0 < counters["kernel.flops.matmul_cols"] < full_gemm

    def test_candidate_counters_recorded(self):
        recorder = InMemoryRecorder()
        head = ALSHTopKHead(_layer(8, 16, 0), k=2, seed=0, recorder=recorder)
        h = np.random.default_rng(5).normal(size=(6, 8))
        head.topk(h)
        assert recorder.get(SERVE_HEAD_QUERIES) == 6
        assert recorder.get(SERVE_HEAD_CANDIDATES) > 0

    def test_exact_path_does_run_the_gemm(self):
        layer = _layer(8, 16, 0)
        head = ALSHTopKHead(layer, k=2, seed=0)
        recorder = InMemoryRecorder()
        backend = InstrumentedBackend(ReferenceBackend(), recorder)
        with use_backend(backend):
            head.topk(np.random.default_rng(6).normal(size=(4, 8)), exact=True)
        counters = recorder.snapshot()["counters"]
        assert counters["kernel.flops.matmul_add_bias"] == gemm_flops(4, 8, 16)


class TestHeadRecallProbe:
    class _FakeServer:
        def __init__(self, head, recorder):
            self.head = head
            self.obs = recorder

    def test_probe_measures_recall_on_cadence(self, small_model):
        recorder = InMemoryRecorder()
        head = ALSHTopKHead(small_model.output_layer(), k=3, seed=0)
        server = self._FakeServer(head, recorder)
        probes = ProbeManager(
            probes=[HeadRecallProbe()], probe_every=2, budget=None, seed=0
        )
        x = np.random.default_rng(8).normal(size=(4, small_model.input_dim))
        trunk = small_model.trunk_forward(x)
        assert not probes.probes[0].supports(server)  # no queries yet
        for _ in range(4):
            head.topk(trunk)
            probes.on_batch(server, trunk, None)
        steps, values = series_points(
            recorder.snapshot(), SERIES_SERVE_HEAD_RECALL
        )
        assert len(values) == 2  # cadence 2, four batches
        assert all(0.0 <= v <= 1.0 for v in values)
