"""End-to-end server tests: bitwise batching, smoke loads, catalogues.

The headline guarantee: with ``pad_batches=True`` on the reference
backend, answers from concurrently-formed micro-batches are **bitwise
identical** to one-at-a-time serving — batch composition cannot change
a single bit of anyone's answer.
"""

import numpy as np
import pytest

from repro.obs import InMemoryRecorder, is_catalogued_series
from repro.obs.counters import COUNTER_CATALOG, GAUGE_CATALOG
from repro.serve.head import ALSHTopKHead
from repro.serve.server import InferenceServer, _fire, run_smoke, seeded_servable


class TestBitwiseBatching:
    def test_batched_equals_one_at_a_time_bitwise(self, small_model):
        """Concurrent micro-batched answers == unbatched padded forwards."""
        rng = np.random.default_rng(0)
        xs = rng.normal(size=(48, small_model.input_dim))
        with InferenceServer(
            small_model,
            max_batch=8,
            max_wait=0.002,
            max_queue=256,
            pad_batches=True,
            backend="reference",
        ) as server:
            requests = [server.submit(x) for x in xs]
            results = [r.result(10.0) for r in requests]
        for i, x in enumerate(xs):
            solo = small_model.predict_logproba(x[None, :], pad_to=8)[0]
            np.testing.assert_array_equal(results[i], solo)

    def test_batch_composition_cannot_change_bits(self, small_model):
        """The same row served in two different mixes answers identically."""
        rng = np.random.default_rng(1)
        probe = rng.normal(size=(small_model.input_dim,))
        answers = []
        for filler_seed in (2, 3):
            filler = np.random.default_rng(filler_seed).normal(
                size=(7, small_model.input_dim)
            )
            with InferenceServer(
                small_model, max_batch=8, max_wait=0.002,
                pad_batches=True, backend="reference",
            ) as server:
                requests = [server.submit(probe)]
                requests += [server.submit(row) for row in filler]
                answers.append(requests[0].result(10.0))
        np.testing.assert_array_equal(answers[0], answers[1])


class TestSmokeLoads:
    def test_nominal_load_sheds_nothing(self, small_model):
        rng = np.random.default_rng(2)
        xs = rng.normal(size=(200, small_model.input_dim))
        recorder = InMemoryRecorder()
        with InferenceServer(
            small_model, max_batch=16, max_wait=0.001,
            max_queue=1024, recorder=recorder,
        ) as server:
            outcome = _fire(server, xs)
        assert outcome == {"ok": 200, "shed": 0, "failed": 0}
        stats = server.stats()
        assert stats["served"] == 200
        assert stats["latency_p50"] <= stats["latency_p99"]

    def test_run_smoke_passes(self, capsys):
        assert run_smoke(requests=200, seed=0, verbose=False) == 0
        out = capsys.readouterr().out
        assert "FAIL" not in out


class TestTopKMode:
    def test_topk_answers_match_direct_head(self, small_model):
        rng = np.random.default_rng(3)
        xs = rng.normal(size=(12, small_model.input_dim))
        with InferenceServer(
            small_model, mode="topk", k=3, max_batch=12, max_wait=0.002,
        ) as server:
            results = [server.submit(x).result(10.0) for x in xs]
        head = ALSHTopKHead(small_model.output_layer(), k=3, seed=0)
        trunk = small_model.trunk_forward(xs)
        for i, (ids, logits) in enumerate(results):
            assert ids.shape == (3,) and logits.shape == (3,)
            exact_ids, exact_logits = head.exact_topk(trunk[i : i + 1], 3)
            cand = head.candidates(trunk[i : i + 1], record=False)[0]
            if set(exact_ids[0].tolist()).issubset(set(cand.tolist())):
                np.testing.assert_array_equal(ids, exact_ids[0])

    def test_exact_topk_mode(self, small_model):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(small_model.input_dim,))
        with InferenceServer(
            small_model, mode="topk", k=2, exact=True, max_batch=4,
        ) as server:
            ids, logits = server.predict(x)
        head = ALSHTopKHead(small_model.output_layer(), k=2, seed=0)
        exact_ids, exact_logits = head.exact_topk(
            small_model.trunk_forward(x[None, :]), 2
        )
        np.testing.assert_array_equal(ids, exact_ids[0])
        np.testing.assert_allclose(logits, exact_logits[0], rtol=1e-12)

    def test_mode_validation(self, small_model):
        with pytest.raises(ValueError, match="unknown serve mode"):
            InferenceServer(small_model, mode="streaming")


class TestServeCatalogueCoverage:
    def test_everything_served_is_catalogued(self, small_model):
        """Satellite guarantee: serve.* telemetry is fully documented."""
        rng = np.random.default_rng(5)
        xs = rng.normal(size=(64, small_model.input_dim))
        recorder = InMemoryRecorder()
        with InferenceServer(
            small_model, mode="topk", k=3, max_batch=8, max_wait=0.001,
            recorder=recorder, probe_every=2,
        ) as server:
            _fire(server, xs)
        snapshot = recorder.snapshot()
        emitted_counters = set(snapshot["counters"])
        assert any(c.startswith("serve.") for c in emitted_counters)
        missing = sorted(emitted_counters - set(COUNTER_CATALOG))
        assert not missing, f"uncatalogued serve counters: {missing}"
        missing_gauges = sorted(
            set(snapshot["gauges"]) - set(GAUGE_CATALOG)
        )
        assert not missing_gauges, f"uncatalogued gauges: {missing_gauges}"
        missing_series = sorted(
            s for s in snapshot["series"] if not is_catalogued_series(s)
        )
        assert not missing_series, f"uncatalogued series: {missing_series}"

    def test_recall_probe_rides_the_server(self, small_model):
        from repro.obs.timeseries import SERIES_SERVE_HEAD_RECALL, series_points

        rng = np.random.default_rng(6)
        xs = rng.normal(size=(64, small_model.input_dim))
        recorder = InMemoryRecorder()
        with InferenceServer(
            small_model, mode="topk", k=3, max_batch=8, max_wait=0.001,
            recorder=recorder, probe_every=2,
        ) as server:
            _fire(server, xs)
        _, values = series_points(recorder.snapshot(), SERIES_SERVE_HEAD_RECALL)
        assert values, "probe_every must land recall points in the trace"
        assert all(0.0 <= v <= 1.0 for v in values)


class TestSeededServable:
    def test_embed_inserts_bottleneck(self):
        model = seeded_servable(
            input_dim=10, hidden=20, depth=2, classes=6, embed=4, seed=0
        )
        assert model.model.layer_sizes == [10, 20, 20, 4, 6]
        assert model.output_layer().W.shape == (4, 6)

    def test_default_has_no_bottleneck(self):
        model = seeded_servable(input_dim=10, hidden=20, depth=1, classes=6)
        assert model.model.layer_sizes == [10, 20, 6]
