"""Model registry: immutable servables, digests, pins, corrupt archives."""

import numpy as np
import pytest

from repro.nn.conv import ConvClassifier, ConvFeatureExtractor
from repro.nn.network import MLP
from repro.nn.serialize import save_conv, save_mlp
from repro.serve.registry import (
    ModelRegistry,
    ServableModel,
    load_servable,
    weights_digest,
)


def _mlp(seed=0, sizes=(6, 10, 4)):
    return MLP(list(sizes), seed=seed)


def _conv(seed=0, image=8):
    extractor = ConvFeatureExtractor(
        in_channels=1, channels=(3,), field=3, pool=2, seed=seed
    )
    head = MLP([extractor.feature_dim(image, image), 8, 3], seed=seed)
    return ConvClassifier(extractor, head)


class TestWeightsDigest:
    def test_deterministic(self):
        net = _mlp(seed=5)
        arrays = [net.layers[0].W, net.layers[0].b]
        assert weights_digest(arrays) == weights_digest(arrays)

    def test_sensitive_to_content(self):
        net = _mlp(seed=5)
        before = weights_digest([net.layers[0].W])
        bumped = net.layers[0].W.copy()
        bumped[0, 0] += 1e-9
        assert weights_digest([bumped]) != before

    def test_sensitive_to_shape(self):
        flat = np.arange(6.0)
        assert weights_digest([flat.reshape(2, 3)]) != weights_digest(
            [flat.reshape(3, 2)]
        )


class TestServableModel:
    def test_roundtrip_predictions_match(self, tmp_path):
        net = _mlp(seed=1)
        x = np.random.default_rng(0).normal(size=(9, 6))
        expected = net.predict_logproba(x)
        servable = load_servable(save_mlp(net, tmp_path / "m"))
        np.testing.assert_array_equal(servable.predict_logproba(x), expected)

    def test_weights_frozen(self, tmp_path):
        servable = load_servable(save_mlp(_mlp(), tmp_path / "m"))
        layer = servable.output_layer()
        with pytest.raises(ValueError):
            layer.W[0, 0] = 1.0
        with pytest.raises(ValueError):
            layer.b[0] = 1.0

    def test_version_defaults_to_digest(self):
        servable = ServableModel(_mlp(seed=2))
        assert servable.version == servable.digest

    def test_rejects_unknown_model_type(self):
        with pytest.raises(TypeError, match="expected MLP or"):
            ServableModel(object())

    def test_conv_servable_predicts_but_has_no_head(self, tmp_path):
        model = _conv(seed=4)
        servable = load_servable(save_conv(model, tmp_path / "c"))
        assert servable.kind == "conv_classifier"
        assert not servable.supports_head
        images = np.random.default_rng(1).normal(size=(2, 1, 8, 8))
        assert servable.predict(images).shape == (2,)
        with pytest.raises(TypeError):
            servable.predict_logproba(images)
        with pytest.raises(TypeError):
            servable.trunk_forward(images)

    def test_pad_to_smaller_than_batch_rejected(self):
        servable = ServableModel(_mlp())
        x = np.zeros((5, 6))
        with pytest.raises(ValueError, match="exceeds pad_to"):
            servable.predict_logproba(x, pad_to=4)

    def test_padded_forward_slices_back_to_batch(self):
        servable = ServableModel(_mlp(seed=3))
        x = np.random.default_rng(2).normal(size=(3, 6))
        out = servable.predict_logproba(x, pad_to=8)
        assert out.shape == (3, 4)

    def test_padded_rows_bitwise_independent_of_batch(self):
        """The bitwise guarantee: fixed-shape forwards pin each row's bits."""
        servable = ServableModel(_mlp(seed=3))
        x = np.random.default_rng(2).normal(size=(6, 6))
        batched = servable.predict_logproba(x, pad_to=8)
        for i in range(6):
            row = servable.predict_logproba(x[i : i + 1], pad_to=8)
            np.testing.assert_array_equal(row[0], batched[i])

    def test_trunk_forward_matches_manual_hidden_pass(self):
        servable = ServableModel(_mlp(seed=6, sizes=(5, 7, 7, 3)))
        x = np.random.default_rng(3).normal(size=(4, 5))
        trunk = servable.trunk_forward(x)
        assert trunk.shape == (4, 7)
        full = servable.predict_logproba(x)
        out = servable.output_layer()
        logits = trunk @ out.W + out.b
        shifted = logits - logits.max(axis=1, keepdims=True)
        logproba = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        np.testing.assert_allclose(logproba, full, atol=1e-10)


class TestLoadServable:
    def test_digest_pin_mismatch_rejected(self, tmp_path):
        path = save_mlp(_mlp(seed=1), tmp_path / "m")
        with pytest.raises(ValueError, match="does not match the pinned"):
            load_servable(path, version="000000000000")

    def test_digest_pin_match_accepted(self, tmp_path):
        path = save_mlp(_mlp(seed=1), tmp_path / "m")
        pin = load_servable(path).digest
        assert load_servable(path, version=pin).version == pin

    def test_corrupt_archive_rejected(self, tmp_path):
        path = save_mlp(_mlp(), tmp_path / "m")
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(ValueError):
            load_servable(path)

    def test_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"not an archive at all")
        with pytest.raises(ValueError):
            load_servable(path)


class TestModelRegistry:
    def test_register_and_get(self, tmp_path):
        registry = ModelRegistry()
        registry.register("clf", save_mlp(_mlp(seed=1), tmp_path / "m"))
        assert "clf" in registry
        assert registry.get("clf").name == "clf"
        assert registry.names() == ["clf"]

    def test_register_live_model_and_servable(self):
        registry = ModelRegistry()
        registry.register("a", _mlp(seed=1))
        registry.register("b", ServableModel(_mlp(seed=2)))
        assert len(registry) == 2

    def test_get_missing_lists_available(self, tmp_path):
        registry = ModelRegistry()
        registry.register("present", _mlp())
        with pytest.raises(KeyError, match="present"):
            registry.get("absent")

    def test_old_version_stays_retrievable(self, tmp_path):
        registry = ModelRegistry()
        v1 = registry.register("clf", _mlp(seed=1))
        v2 = registry.register("clf", _mlp(seed=2))
        assert registry.get("clf").digest == v2.digest
        assert registry.get("clf", version=v1.version).digest == v1.digest

    def test_get_unknown_version_rejected(self):
        registry = ModelRegistry()
        registry.register("clf", _mlp(seed=1))
        with pytest.raises(KeyError, match="version"):
            registry.get("clf", version="nope")

    def test_register_pin_mismatch_rejected(self, tmp_path):
        registry = ModelRegistry()
        path = save_mlp(_mlp(seed=1), tmp_path / "m")
        with pytest.raises(ValueError):
            registry.register("clf", path, version="000000000000")
        assert "clf" not in registry

    def test_unregister_drops_all_versions(self):
        registry = ModelRegistry()
        v1 = registry.register("clf", _mlp(seed=1))
        registry.register("clf", _mlp(seed=2))
        registry.unregister("clf")
        assert "clf" not in registry
        with pytest.raises(KeyError):
            registry.get("clf", version=v1.version)
