"""Deterministic micro-batcher tests: scripted clock, no worker thread.

Every timing path — batch full, window expiry, whichever-comes-first,
deadline shedding — is driven by a :class:`FakeClock`, so these tests
never sleep and never race.
"""

import numpy as np
import pytest

from repro.obs import InMemoryRecorder
from repro.obs.counters import (
    HIST_SERVE_LATENCY,
    HIST_SERVE_QUEUE_WAIT,
    SERVE_BATCHES,
    SERVE_QUEUE_DEPTH,
    SERVE_REQUESTS,
    SERVE_SHED_DEADLINE,
    SERVE_SHED_QUEUE_FULL,
)
from repro.obs.timeseries import SERIES_SERVE_BATCH_SIZE, series_points
from repro.serve.batcher import (
    BatchCollector,
    DeadlineExceeded,
    MicroBatcher,
    ServeRequest,
    ServerClosed,
    ServerOverloaded,
)

from .conftest import echo_handler


def _request(x, t, deadline=None):
    return ServeRequest(np.asarray(x, dtype=float), t, deadline)


class TestBatchCollector:
    def test_validation(self):
        with pytest.raises(ValueError):
            BatchCollector(0, 0.01)
        with pytest.raises(ValueError):
            BatchCollector(4, -1.0)

    def test_empty_never_ready(self):
        collector = BatchCollector(4, 0.01)
        assert not collector.ready(1e9)
        assert collector.wait_time(0.0) is None

    def test_ready_at_max_batch_immediately(self):
        collector = BatchCollector(2, 10.0)
        collector.offer(_request([1.0], 0.0))
        assert not collector.ready(0.0)
        collector.offer(_request([2.0], 0.0))
        assert collector.ready(0.0)  # full beats the window

    def test_ready_when_oldest_waited_max_wait(self):
        collector = BatchCollector(100, 0.5)
        collector.offer(_request([1.0], 10.0))
        assert not collector.ready(10.4)
        assert collector.ready(10.5)

    def test_whichever_comes_first(self):
        # Window expires before the batch fills...
        collector = BatchCollector(3, 0.5)
        collector.offer(_request([1.0], 0.0))
        collector.offer(_request([2.0], 0.3))
        assert collector.ready(0.5)
        # ...and filling the batch beats the window.
        collector = BatchCollector(2, 0.5)
        collector.offer(_request([1.0], 0.0))
        collector.offer(_request([2.0], 0.1))
        assert collector.ready(0.1)

    def test_wait_time_counts_down_from_oldest(self):
        collector = BatchCollector(10, 1.0)
        collector.offer(_request([1.0], 5.0))
        collector.offer(_request([2.0], 5.8))
        assert collector.wait_time(5.25) == pytest.approx(0.75)
        assert collector.wait_time(7.0) == 0.0

    def test_drain_preserves_arrival_order(self):
        collector = BatchCollector(3, 0.01)
        for i in range(5):
            collector.offer(_request([float(i)], 0.0))
        live, expired = collector.drain(0.0)
        assert [r.x[0] for r in live] == [0.0, 1.0, 2.0]
        assert not expired
        assert len(collector) == 2

    def test_deadline_boundary_is_inclusive_in_drain(self):
        """A request drained exactly at its deadline is shed, not served.

        Pins the ``now >= deadline`` boundary: at ``now == deadline``
        the request has zero remaining budget, so serving it would
        always deliver late.
        """
        collector = BatchCollector(4, 0.01)
        collector.offer(_request([0.0], 0.0, deadline=2.0))
        collector.offer(_request([1.0], 0.0))
        live, expired = collector.drain(2.0)  # now == deadline exactly
        assert [r.x[0] for r in live] == [1.0]
        assert [r.x[0] for r in expired] == [0.0]

    def test_expired_requests_do_not_consume_batch_slots(self):
        collector = BatchCollector(2, 0.01)
        collector.offer(_request([0.0], 0.0, deadline=1.0))  # will expire
        collector.offer(_request([1.0], 0.0))
        collector.offer(_request([2.0], 0.0, deadline=1.0))  # will expire
        collector.offer(_request([3.0], 0.0))
        live, expired = collector.drain(2.0)
        assert [r.x[0] for r in live] == [1.0, 3.0]
        assert [r.x[0] for r in expired] == [0.0, 2.0]
        assert len(collector) == 0


class TestMicroBatcherDeterministic:
    def _batcher(self, clock, recorder=None, **kwargs):
        kwargs.setdefault("max_batch", 4)
        kwargs.setdefault("max_wait", 0.010)
        return MicroBatcher(
            echo_handler,
            clock=clock,
            recorder=recorder or InMemoryRecorder(),
            start_worker=False,
            **kwargs,
        )

    def test_not_ready_before_window_or_fill(self, clock):
        batcher = self._batcher(clock)
        batcher.submit([1.0, 2.0])
        assert batcher.run_once() == 0
        assert batcher.queue_depth() == 1

    def test_dispatch_at_max_batch(self, clock):
        batcher = self._batcher(clock)
        requests = [batcher.submit([float(i)]) for i in range(4)]
        assert batcher.run_once() == 4
        for i, request in enumerate(requests):
            np.testing.assert_array_equal(request.result(0), [2.0 * i])

    def test_dispatch_at_window_expiry(self, clock):
        batcher = self._batcher(clock)
        request = batcher.submit([3.0])
        assert batcher.run_once() == 0
        clock.advance(0.010)
        assert batcher.run_once() == 1
        np.testing.assert_array_equal(request.result(0), [6.0])

    def test_scatter_order_matches_submission_order(self, clock):
        """Row i of the batched answer lands on the i-th submitter."""
        batcher = self._batcher(clock, max_batch=8)
        values = [[float(i), float(-i)] for i in range(8)]
        requests = [batcher.submit(v) for v in values]
        batcher.run_once()
        for value, request in zip(values, requests):
            np.testing.assert_array_equal(
                request.result(0), np.asarray(value) * 2.0
            )

    def test_queue_full_sheds_with_429(self, clock):
        recorder = InMemoryRecorder()
        batcher = self._batcher(clock, recorder=recorder, max_queue=2)
        batcher.submit([1.0])
        batcher.submit([2.0])
        with pytest.raises(ServerOverloaded):
            batcher.submit([3.0])
        assert recorder.get(SERVE_SHED_QUEUE_FULL) == 1
        assert recorder.get(SERVE_REQUESTS) == 2

    def test_expired_requests_shed_at_dispatch(self, clock):
        recorder = InMemoryRecorder()
        batcher = self._batcher(clock, recorder=recorder)
        stale = batcher.submit([1.0], deadline=0.005)
        fresh = batcher.submit([2.0])
        clock.advance(0.010)
        assert batcher.run_once() == 2
        with pytest.raises(DeadlineExceeded):
            stale.result(0)
        np.testing.assert_array_equal(fresh.result(0), [4.0])
        assert recorder.get(SERVE_SHED_DEADLINE) == 1

    def test_dispatch_exactly_at_deadline_sheds(self, clock):
        """now == deadline at dispatch time sheds through the full path."""
        recorder = InMemoryRecorder()
        batcher = self._batcher(clock, recorder=recorder)
        boundary = batcher.submit([1.0], deadline=0.010)
        fresh = batcher.submit([2.0])
        clock.advance(0.010)  # window expiry lands exactly on the deadline
        assert batcher.run_once() == 2
        with pytest.raises(DeadlineExceeded):
            boundary.result(0)
        np.testing.assert_array_equal(fresh.result(0), [4.0])
        assert recorder.get(SERVE_SHED_DEADLINE) == 1

    def test_default_deadline_applies_to_every_request(self, clock):
        batcher = self._batcher(clock, default_deadline=0.005)
        request = batcher.submit([1.0])
        assert request.deadline == pytest.approx(clock.now + 0.005)

    def test_run_once_force_drains_partial_batch(self, clock):
        batcher = self._batcher(clock)
        request = batcher.submit([5.0])
        assert batcher.run_once() == 0
        assert batcher.run_once(force=True) == 1
        np.testing.assert_array_equal(request.result(0), [10.0])

    def test_submit_after_close_rejected(self, clock):
        batcher = self._batcher(clock)
        batcher.close()
        with pytest.raises(ServerClosed):
            batcher.submit([1.0])

    def test_close_without_drain_fails_pending(self, clock):
        batcher = self._batcher(clock)
        request = batcher.submit([1.0])
        batcher.close(drain=False)
        with pytest.raises(ServerClosed):
            request.result(0)

    def test_close_with_drain_serves_pending(self, clock):
        batcher = self._batcher(clock)
        request = batcher.submit([1.0])
        batcher.close(drain=True)
        np.testing.assert_array_equal(request.result(0), [2.0])

    def test_counters_series_and_gauge(self, clock):
        recorder = InMemoryRecorder()
        batcher = self._batcher(clock, recorder=recorder, max_batch=2)
        for i in range(4):
            batcher.submit([float(i)])
            batcher.run_once()
        snapshot = recorder.snapshot()
        assert snapshot["counters"][SERVE_REQUESTS] == 4
        assert snapshot["counters"][SERVE_BATCHES] == 2
        assert snapshot["gauges"][SERVE_QUEUE_DEPTH] == 2
        _, sizes = series_points(snapshot, SERIES_SERVE_BATCH_SIZE)
        assert sizes == [2.0, 2.0]

    def test_latencies_measured_on_injected_clock(self, clock):
        batcher = self._batcher(clock)
        batcher.submit([1.0])
        clock.advance(0.010)
        batcher.run_once()
        # Latencies land in a bounded log-bucket histogram; the estimate
        # is exact to within one bucket width (growth factor ~1.149).
        assert batcher.latency.count == 1
        p50 = batcher.latency.quantile(0.5)
        assert 0.010 / 1.149 <= p50 <= 0.010 * 1.149

    def test_live_recorder_histogram_is_aliased(self, clock):
        recorder = InMemoryRecorder()
        batcher = self._batcher(clock, recorder=recorder)
        batcher.submit([1.0])
        clock.advance(0.010)
        batcher.run_once()
        # With a live recorder the batcher's histograms ARE the
        # recorder's: one record per sample feeds stats() and snapshots.
        assert batcher.latency is recorder.get_histogram(HIST_SERVE_LATENCY)
        snap = recorder.snapshot()["histograms"]
        assert snap[HIST_SERVE_LATENCY]["count"] == 1
        assert snap[HIST_SERVE_QUEUE_WAIT]["count"] == 1


class TestServeRequest:
    def test_result_timeout(self, clock):
        request = _request([1.0], clock())
        with pytest.raises(TimeoutError):
            request.result(timeout=0.01)

    def test_latency_none_while_pending(self, clock):
        request = _request([1.0], clock())
        assert request.latency is None
        request.set_result("ok", clock() + 1.5)
        assert request.latency == pytest.approx(1.5)
