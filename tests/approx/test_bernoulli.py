"""Statistical tests for the Adelman Bernoulli estimator (paper §6.2, Eq. 7)."""

import numpy as np
import pytest

from repro.approx.bernoulli import (
    bernoulli_multiply,
    bernoulli_probabilities,
    bernoulli_sample,
    expected_error_frobenius,
)


@pytest.fixture
def matrices(rng):
    a = rng.normal(size=(6, 25))
    b = rng.normal(size=(25, 5))
    return a, b


class TestProbabilities:
    def test_budget(self, matrices):
        a, b = matrices
        for k in (1, 5, 12, 25):
            assert bernoulli_probabilities(a, b, k).sum() == pytest.approx(k)

    def test_full_budget_keeps_everything(self, matrices):
        a, b = matrices
        np.testing.assert_allclose(bernoulli_probabilities(a, b, 25), 1.0)


class TestSampling:
    def test_kept_count_near_budget(self, matrices):
        a, b = matrices
        probs = bernoulli_probabilities(a, b, 10)
        counts = [
            bernoulli_sample(probs, np.random.default_rng(t))[0].size
            for t in range(400)
        ]
        assert np.mean(counts) == pytest.approx(10, abs=0.5)

    def test_scales_are_inverse_probabilities(self, matrices, rng):
        a, b = matrices
        probs = bernoulli_probabilities(a, b, 8)
        idx, scales = bernoulli_sample(probs, rng)
        np.testing.assert_allclose(scales, 1.0 / probs[idx])

    def test_invalid_probs(self, rng):
        with pytest.raises(ValueError):
            bernoulli_sample(np.array([0.5, 1.5]), rng)


class TestEstimator:
    def test_full_budget_is_exact(self, matrices, rng):
        """With k = n every p_i = 1: the estimate IS the exact product."""
        a, b = matrices
        np.testing.assert_allclose(
            bernoulli_multiply(a, b, 25, rng), a @ b, atol=1e-10
        )

    def test_unbiased(self, matrices):
        a, b = matrices
        exact = a @ b
        acc = np.zeros_like(exact)
        n_trials = 800
        for t in range(n_trials):
            acc += bernoulli_multiply(a, b, 6, np.random.default_rng(t))
        err = np.linalg.norm(acc / n_trials - exact, "fro") / np.linalg.norm(
            exact, "fro"
        )
        assert err < 0.12

    def test_empirical_error_matches_formula(self, matrices):
        a, b = matrices
        exact = a @ b
        probs = bernoulli_probabilities(a, b, 8)
        predicted = expected_error_frobenius(a, b, probs)
        errors = []
        for t in range(600):
            est = bernoulli_multiply(a, b, 8, np.random.default_rng(t + 5_000))
            errors.append(np.linalg.norm(exact - est, "fro") ** 2)
        assert float(np.mean(errors)) == pytest.approx(predicted, rel=0.15)

    def test_error_decreases_with_budget(self, matrices):
        a, b = matrices
        errs = [
            expected_error_frobenius(a, b, bernoulli_probabilities(a, b, k))
            for k in (2, 5, 10, 20, 25)
        ]
        assert errs == sorted(errs, reverse=True)
        assert errs[-1] == pytest.approx(0.0, abs=1e-9)

    def test_eq7_beats_uniform_bernoulli(self, rng):
        """The Eq. 7 distribution minimises the expected error under the
        budget constraint — uniform keep-probabilities must be worse."""
        a = rng.normal(size=(5, 30)) * np.logspace(0, 2, 30)
        b = rng.normal(size=(30, 5))
        k = 6
        opt = expected_error_frobenius(a, b, bernoulli_probabilities(a, b, k))
        uni = expected_error_frobenius(a, b, np.full(30, k / 30))
        assert opt < uni

    def test_empty_draw_returns_zeros(self, rng):
        a = np.ones((2, 3))
        b = np.ones((3, 2))
        # Force impossible probabilities via explicit probs ≈ 0.
        out = bernoulli_multiply(a, b, 1, rng, probs=np.full(3, 1e-12))
        np.testing.assert_array_equal(out, 0.0)

    def test_dim_mismatch(self, rng):
        with pytest.raises(ValueError):
            bernoulli_multiply(np.ones((2, 3)), np.ones((4, 2)), 2, rng)
