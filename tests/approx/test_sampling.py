"""Tests for repro.approx.sampling — scores, normalisation, waterfilling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.approx.sampling import (
    clipped_probabilities,
    importance_scores,
    normalize_probabilities,
    sample_with_replacement,
)


class TestImportanceScores:
    def test_values(self):
        a = np.array([[1.0, 0.0], [0.0, 2.0]])
        b = np.array([[3.0, 0.0], [0.0, 4.0]])
        np.testing.assert_allclose(importance_scores(a, b), [3.0, 8.0])

    def test_nonnegative(self, rng):
        a = rng.normal(size=(4, 6))
        b = rng.normal(size=(6, 3))
        assert (importance_scores(a, b) >= 0).all()

    def test_dim_mismatch(self, rng):
        with pytest.raises(ValueError):
            importance_scores(rng.normal(size=(2, 3)), rng.normal(size=(4, 2)))


class TestNormalize:
    def test_sums_to_one(self, rng):
        p = normalize_probabilities(rng.uniform(size=10))
        assert p.sum() == pytest.approx(1.0)

    def test_zero_scores_uniform(self):
        p = normalize_probabilities(np.zeros(4))
        np.testing.assert_allclose(p, 0.25)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            normalize_probabilities(np.array([1.0, -1.0]))


class TestClippedProbabilities:
    def test_budget_constraint_exact(self, rng):
        scores = rng.uniform(size=20)
        for k in (1, 5, 10, 19, 20):
            p = clipped_probabilities(scores, k)
            assert p.sum() == pytest.approx(k, rel=1e-9)

    def test_all_in_unit_interval(self, rng):
        p = clipped_probabilities(rng.uniform(size=15) ** 4, 7)
        assert ((p >= 0) & (p <= 1 + 1e-12)).all()

    def test_waterfilling_clips_dominant_scores(self):
        """A hugely dominant score is pinned at 1, not above."""
        scores = np.array([1000.0, 1.0, 1.0, 1.0])
        p = clipped_probabilities(scores, 2)
        assert p[0] == pytest.approx(1.0)
        # Remaining budget of 1 spreads proportionally over the equal tail.
        np.testing.assert_allclose(p[1:], 1.0 / 3, rtol=1e-9)
        assert p.sum() == pytest.approx(2.0)

    def test_k_equals_n_all_ones(self, rng):
        scores = rng.uniform(0.1, 1.0, size=8)
        np.testing.assert_allclose(clipped_probabilities(scores, 8), 1.0)

    def test_monotone_in_scores(self, rng):
        scores = np.sort(rng.uniform(size=12))
        p = clipped_probabilities(scores, 4)
        assert (np.diff(p) >= -1e-12).all()

    def test_zero_scores_uniform(self):
        p = clipped_probabilities(np.zeros(10), 3)
        np.testing.assert_allclose(p, 0.3)

    def test_zero_score_entries_get_zero(self):
        scores = np.array([0.0, 1.0, 1.0, 0.0])
        p = clipped_probabilities(scores, 1)
        assert p[0] == 0.0
        assert p[3] == 0.0

    @pytest.mark.parametrize("k", [0, 21])
    def test_invalid_k(self, k, rng):
        with pytest.raises(ValueError):
            clipped_probabilities(rng.uniform(size=20), k)

    @settings(max_examples=60)
    @given(
        arrays(np.float64, st.integers(2, 30), elements=st.floats(0, 100)),
        st.data(),
    )
    def test_property_budget_and_bounds(self, scores, data):
        k = data.draw(st.integers(1, scores.size))
        p = clipped_probabilities(scores, k)
        assert ((p >= -1e-12) & (p <= 1 + 1e-9)).all()
        assert p.sum() == pytest.approx(k, rel=1e-6, abs=1e-6)


class TestSampleWithReplacement:
    def test_count_and_probs(self, rng):
        probs = normalize_probabilities(np.arange(1.0, 6.0))
        idx, p_sel = sample_with_replacement(probs, 100, rng)
        assert idx.shape == (100,)
        np.testing.assert_allclose(p_sel, probs[idx])

    def test_zero_probability_never_sampled(self, rng):
        probs = np.array([0.0, 1.0])
        idx, _ = sample_with_replacement(probs, 50, rng)
        assert (idx == 1).all()

    def test_invalid_count(self, rng):
        with pytest.raises(ValueError):
            sample_with_replacement(np.array([1.0]), 0, rng)

    def test_empirical_frequencies(self):
        rng = np.random.default_rng(0)
        probs = np.array([0.7, 0.2, 0.1])
        idx, _ = sample_with_replacement(probs, 20_000, rng)
        freq = np.bincount(idx, minlength=3) / 20_000
        np.testing.assert_allclose(freq, probs, atol=0.02)


class TestNonFiniteGuards:
    def test_clipped_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            clipped_probabilities(np.array([1.0, np.nan, 2.0]), 2)

    def test_clipped_rejects_inf(self):
        with pytest.raises(ValueError, match="finite"):
            clipped_probabilities(np.array([1.0, np.inf]), 1)

    def test_normalize_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            normalize_probabilities(np.array([np.nan, 1.0]))

    def test_subnormal_scores_respect_budget(self):
        """Regression: subnormal scores once overflowed λ and mis-clipped
        every entry, breaking Σp = k."""
        tiny = np.full(2, 2.22507386e-309)
        p = clipped_probabilities(tiny, 1)
        np.testing.assert_allclose(p, 0.5)
        assert p.sum() == pytest.approx(1.0)

    def test_mixed_subnormal_tail_respects_budget(self):
        """Regression: a subnormal tail after clipping the head once
        overflowed λ on the second waterfilling pass."""
        scores = np.array([1.0, 2.22507386e-309, 2.22507386e-309])
        p = clipped_probabilities(scores, 2)
        assert p[0] == pytest.approx(1.0)
        np.testing.assert_allclose(p[1:], 0.5)
        assert p.sum() == pytest.approx(2.0)
