"""Statistical tests for the Drineas CR estimator (paper §6.1, Eq. 6)."""

import numpy as np
import pytest

from repro.approx.drineas import (
    cr_decomposition,
    cr_multiply,
    expected_error_frobenius,
    optimal_probabilities,
)


@pytest.fixture
def matrices(rng):
    a = rng.normal(size=(8, 30))
    b = rng.normal(size=(30, 6))
    return a, b


class TestProbabilities:
    def test_normalised(self, matrices):
        a, b = matrices
        assert optimal_probabilities(a, b).sum() == pytest.approx(1.0)

    def test_proportional_to_norm_products(self, matrices):
        a, b = matrices
        p = optimal_probabilities(a, b)
        scores = np.linalg.norm(a, axis=0) * np.linalg.norm(b, axis=1)
        np.testing.assert_allclose(p, scores / scores.sum())


class TestCRDecomposition:
    def test_shapes(self, matrices, rng):
        a, b = matrices
        c_factor, r_factor, idx = cr_decomposition(a, b, 12, rng)
        assert c_factor.shape == (8, 12)
        assert r_factor.shape == (12, 6)
        assert idx.shape == (12,)

    def test_full_budget_exactness_impossible_but_unbiased(self, matrices):
        """Even with c = n the with-replacement estimator is random, but its
        mean converges to AB."""
        a, b = matrices
        exact = a @ b
        est = np.zeros_like(exact)
        n_trials = 600
        for t in range(n_trials):
            est += cr_multiply(a, b, 30, np.random.default_rng(t))
        mean = est / n_trials
        rel = np.linalg.norm(mean - exact, "fro") / np.linalg.norm(exact, "fro")
        assert rel < 0.05

    def test_dim_mismatch(self, rng):
        with pytest.raises(ValueError):
            cr_decomposition(rng.normal(size=(2, 3)), rng.normal(size=(4, 2)), 2, rng)

    def test_bad_probs_shape(self, matrices, rng):
        a, b = matrices
        with pytest.raises(ValueError):
            cr_decomposition(a, b, 4, rng, probs=np.ones(5) / 5)


class TestUnbiasedness:
    def test_mean_converges_to_exact(self, matrices):
        a, b = matrices
        exact = a @ b
        n_trials = 800
        acc = np.zeros_like(exact)
        for t in range(n_trials):
            acc += cr_multiply(a, b, 5, np.random.default_rng(t))
        mean = acc / n_trials
        err = np.linalg.norm(mean - exact, "fro") / np.linalg.norm(exact, "fro")
        assert err < 0.12


class TestVariance:
    def test_empirical_error_matches_formula(self, matrices):
        """E‖AB − CR‖_F² must match the closed form within MC noise."""
        a, b = matrices
        exact = a @ b
        c = 8
        predicted = expected_error_frobenius(a, b, c)
        n_trials = 500
        errors = []
        for t in range(n_trials):
            est = cr_multiply(a, b, c, np.random.default_rng(t + 10_000))
            errors.append(np.linalg.norm(exact - est, "fro") ** 2)
        empirical = float(np.mean(errors))
        assert empirical == pytest.approx(predicted, rel=0.15)

    def test_error_shrinks_like_one_over_c(self, matrices):
        a, b = matrices
        e5 = expected_error_frobenius(a, b, 5)
        e10 = expected_error_frobenius(a, b, 10)
        e20 = expected_error_frobenius(a, b, 20)
        assert e10 == pytest.approx(e5 / 2, rel=1e-9)
        assert e20 == pytest.approx(e5 / 4, rel=1e-9)

    def test_optimal_probs_beat_uniform(self, rng):
        """Eq. 6 minimises expected error: uniform must be no better."""
        # Skewed norms make the gap pronounced.
        a = rng.normal(size=(6, 20)) * np.logspace(0, 2, 20)
        b = rng.normal(size=(20, 6))
        uniform = np.full(20, 1 / 20)
        assert expected_error_frobenius(a, b, 5) <= expected_error_frobenius(
            a, b, 5, probs=uniform
        )

    def test_zero_prob_on_nonzero_score_is_infinite(self, matrices):
        a, b = matrices
        probs = np.full(30, 1 / 29)
        probs[0] = 0.0
        assert expected_error_frobenius(a, b, 5, probs=probs) == float("inf")

    def test_invalid_c(self, matrices):
        a, b = matrices
        with pytest.raises(ValueError):
            expected_error_frobenius(a, b, 0)
