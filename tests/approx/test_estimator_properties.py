"""Property-based tests (hypothesis) for the §6 matrix-product estimators.

Three invariants from the paper's sampling theory:

* Drineas Eq. 6 probabilities are a distribution proportional to the
  importance scores (variance-optimal normalisation).
* The CR estimator is unbiased: averaging independent draws converges to
  the exact product at the 1/√n rate its closed-form variance predicts.
* The Bernoulli Eq. 7 waterfilling clamps to ``min{λ·score, 1}`` while
  holding the budget ``Σ p_i = k`` exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.approx.bernoulli import bernoulli_probabilities
from repro.approx.drineas import (
    cr_multiply,
    expected_error_frobenius,
    optimal_probabilities,
)
from repro.approx.sampling import clipped_probabilities, importance_scores

finite = st.floats(-50, 50, allow_nan=False, allow_infinity=False)
matrix_pairs = st.integers(2, 7).flatmap(
    lambda inner: st.tuples(
        arrays(np.float64, st.tuples(st.integers(1, 5), st.just(inner)), elements=finite),
        arrays(np.float64, st.tuples(st.just(inner), st.integers(1, 5)), elements=finite),
    )
)
# Subnormal scores are excluded: recovering λ from p_i/score_i underflows
# for 5e-324-sized scores, which breaks the *test's* arithmetic (the
# waterfilling itself handles them — see clipped_probabilities).
score_vectors = arrays(
    np.float64,
    st.integers(2, 40),
    elements=st.floats(
        0, 1e6, allow_nan=False, allow_infinity=False, allow_subnormal=False
    ),
)


class TestDrineasProbabilities:
    @settings(max_examples=60, deadline=None)
    @given(ab=matrix_pairs)
    def test_normalised_distribution(self, ab):
        a, b = ab
        probs = optimal_probabilities(a, b)
        assert probs.shape == (a.shape[1],)
        assert (probs >= 0).all()
        assert probs.sum() == pytest.approx(1.0)

    @settings(max_examples=60, deadline=None)
    @given(ab=matrix_pairs)
    def test_proportional_to_importance_scores(self, ab):
        a, b = ab
        scores = importance_scores(a, b)
        probs = optimal_probabilities(a, b)
        if scores.sum() == 0:
            # degenerate fallback: uniform
            np.testing.assert_allclose(probs, 1.0 / scores.size)
        else:
            np.testing.assert_allclose(probs, scores / scores.sum(), atol=1e-12)

    @settings(max_examples=30, deadline=None)
    @given(ab=matrix_pairs, scale=st.floats(0.01, 100))
    def test_scale_invariant(self, ab, scale):
        """Rescaling A leaves the distribution unchanged."""
        a, b = ab
        np.testing.assert_allclose(
            optimal_probabilities(a * scale, b),
            optimal_probabilities(a, b),
            atol=1e-9,
        )


class TestCREstimatorUnbiasedness:
    @settings(max_examples=12, deadline=None, derandomize=True)
    @given(
        ab=matrix_pairs,
        c=st.integers(1, 4),
        seed=st.integers(0, 2**16),
    )
    def test_mean_over_seeds_converges_to_exact_product(self, ab, c, seed):
        a, b = ab
        exact = a @ b
        n_draws = 400
        rng = np.random.default_rng(seed)
        mean = np.zeros_like(exact)
        for _ in range(n_draws):
            mean += cr_multiply(a, b, c, rng)
        mean /= n_draws
        # Var(mean error) = E||AB - CR||_F^2 / n; allow 6 sigma-equivalents
        # via Chebyshev so derandomised examples never flake.
        expected_sq = expected_error_frobenius(a, b, c)
        if not np.isfinite(expected_sq):
            return
        err_sq = float(np.linalg.norm(exact - mean, "fro") ** 2)
        bound = 36.0 * expected_sq / n_draws
        assert err_sq <= bound + 1e-12


class TestBernoulliWaterfilling:
    @settings(max_examples=100, deadline=None)
    @given(data=st.data(), scores=score_vectors)
    def test_clamped_to_unit_interval_with_exact_budget(self, data, scores):
        k = data.draw(st.integers(1, scores.size))
        probs = clipped_probabilities(scores, k)
        assert (probs >= 0).all()
        assert (probs <= 1.0 + 1e-12).all()
        assert probs.sum() == pytest.approx(k, rel=1e-9)

    @settings(max_examples=100, deadline=None)
    @given(data=st.data(), scores=score_vectors)
    def test_clamp_is_min_of_linear_and_one(self, data, scores):
        """Unclipped entries share one λ: p_i = min{λ·score_i, 1}."""
        k = data.draw(st.integers(1, scores.size))
        probs = clipped_probabilities(scores, k)
        free = (probs < 1.0) & (scores > 0)
        if free.sum() >= 2:
            lam = probs[free] / scores[free]
            np.testing.assert_allclose(lam, lam[0], rtol=1e-6)
        # every pinned entry must dominate the free entries' ratio
        if free.any() and (~free & (scores > 0)).any():
            lam = (probs[free] / scores[free]).max()
            pinned_scores = scores[~free & (scores > 0)]
            assert (lam * pinned_scores >= 1.0 - 1e-9).all()

    @settings(max_examples=60, deadline=None)
    @given(scores=score_vectors)
    def test_full_budget_keeps_everything(self, scores):
        probs = clipped_probabilities(scores, scores.size)
        np.testing.assert_allclose(probs, 1.0)

    @settings(max_examples=60, deadline=None)
    @given(ab=matrix_pairs, data=st.data())
    def test_bernoulli_probabilities_match_waterfilled_scores(self, ab, data):
        a, b = ab
        k = data.draw(st.integers(1, a.shape[1]))
        np.testing.assert_allclose(
            bernoulli_probabilities(a, b, k),
            clipped_probabilities(importance_scores(a, b), k),
            atol=1e-12,
        )
