"""Tests for the uniform and top-k baseline estimators."""

import numpy as np
import pytest

from repro.approx.baselines import (
    topk_multiply,
    uniform_bernoulli_multiply,
    uniform_multiply,
)
from repro.approx.bernoulli import bernoulli_multiply
from repro.approx.drineas import cr_multiply


@pytest.fixture
def skewed(rng):
    """Matrices with strongly skewed column norms (baselines suffer)."""
    a = rng.normal(size=(6, 24)) * np.logspace(0, 2, 24)
    b = rng.normal(size=(24, 6))
    return a, b


class TestUniformCR:
    def test_unbiased(self, skewed):
        a, b = skewed
        exact = a @ b
        acc = np.zeros_like(exact)
        for t in range(1200):
            acc += uniform_multiply(a, b, 6, np.random.default_rng(t))
        err = np.linalg.norm(acc / 1200 - exact, "fro") / np.linalg.norm(exact, "fro")
        assert err < 0.25

    def test_higher_variance_than_optimal(self, skewed):
        a, b = skewed
        exact = a @ b

        def mse(fn):
            errs = [
                np.linalg.norm(exact - fn(np.random.default_rng(t)), "fro") ** 2
                for t in range(300)
            ]
            return np.mean(errs)

        uni = mse(lambda r: uniform_multiply(a, b, 6, r))
        opt = mse(lambda r: cr_multiply(a, b, 6, r))
        assert opt < uni


class TestUniformBernoulli:
    def test_full_budget_exact(self, skewed, rng):
        a, b = skewed
        np.testing.assert_allclose(
            uniform_bernoulli_multiply(a, b, 24, rng), a @ b, atol=1e-9
        )

    def test_unbiased(self, skewed):
        a, b = skewed
        exact = a @ b
        acc = np.zeros_like(exact)
        for t in range(1500):
            acc += uniform_bernoulli_multiply(a, b, 8, np.random.default_rng(t))
        err = np.linalg.norm(acc / 1500 - exact, "fro") / np.linalg.norm(exact, "fro")
        assert err < 0.3

    def test_higher_variance_than_eq7(self, skewed):
        a, b = skewed
        exact = a @ b

        def mse(fn):
            errs = [
                np.linalg.norm(exact - fn(np.random.default_rng(t)), "fro") ** 2
                for t in range(300)
            ]
            return np.mean(errs)

        uni = mse(lambda r: uniform_bernoulli_multiply(a, b, 8, r))
        opt = mse(lambda r: bernoulli_multiply(a, b, 8, r))
        assert opt < uni

    @pytest.mark.parametrize("k", [0, 25])
    def test_invalid_k(self, k, skewed, rng):
        a, b = skewed
        with pytest.raises(ValueError):
            uniform_bernoulli_multiply(a, b, k, rng)


class TestTopK:
    def test_deterministic(self, skewed):
        a, b = skewed
        np.testing.assert_array_equal(
            topk_multiply(a, b, 5), topk_multiply(a, b, 5)
        )

    def test_full_budget_exact(self, skewed):
        a, b = skewed
        np.testing.assert_allclose(topk_multiply(a, b, 24), a @ b, atol=1e-9)

    def test_biased_towards_heavy_pairs(self, skewed):
        """Top-k keeps the dominant mass: error far below keeping the
        lightest pairs would give."""
        a, b = skewed
        exact = a @ b
        err = np.linalg.norm(exact - topk_multiply(a, b, 8), "fro")
        # With log-spaced norms, the top third carries almost everything.
        assert err / np.linalg.norm(exact, "fro") < 0.5

    def test_error_monotone_in_k(self, skewed):
        a, b = skewed
        exact = a @ b
        errs = [
            np.linalg.norm(exact - topk_multiply(a, b, k), "fro")
            for k in (2, 6, 12, 18, 24)
        ]
        assert errs == sorted(errs, reverse=True)

    def test_invalid_k(self, skewed):
        a, b = skewed
        with pytest.raises(ValueError):
            topk_multiply(a, b, 0)
