"""Tests for the unified approx_matmul front door."""

import numpy as np
import pytest

from repro.approx.interface import METHODS, approx_matmul, frobenius_error


@pytest.fixture
def matrices(rng):
    return rng.normal(size=(5, 20)), rng.normal(size=(20, 4))


class TestDispatch:
    def test_exact(self, matrices):
        a, b = matrices
        np.testing.assert_allclose(approx_matmul(a, b, 5, "exact"), a @ b)

    @pytest.mark.parametrize(
        "method", [m for m in METHODS if m != "exact"]
    )
    def test_all_methods_produce_right_shape(self, method, matrices, rng):
        a, b = matrices
        out = approx_matmul(a, b, 8, method, rng)
        assert out.shape == (5, 4)

    def test_unknown_method(self, matrices):
        a, b = matrices
        with pytest.raises(ValueError, match="unknown method"):
            approx_matmul(a, b, 5, "magic")

    def test_default_rng_created(self, matrices):
        a, b = matrices
        out = approx_matmul(a, b, 8, "bernoulli", rng=None)
        assert out.shape == (5, 4)

    @pytest.mark.parametrize("method", ["drineas", "bernoulli", "topk"])
    def test_error_decreases_with_budget(self, method, matrices):
        """Across the budget sweep, average relative error must shrink."""
        a, b = matrices
        exact = a @ b

        def mean_error(budget):
            errs = [
                frobenius_error(
                    exact, approx_matmul(a, b, budget, method, np.random.default_rng(t))
                )
                for t in range(60)
            ]
            return np.mean(errs)

        assert mean_error(16) < mean_error(2)


class TestFrobeniusError:
    def test_zero_for_identical(self, matrices):
        a, b = matrices
        assert frobenius_error(a @ b, a @ b) == 0.0

    def test_relative_scale(self):
        exact = np.eye(2)
        est = np.zeros((2, 2))
        assert frobenius_error(exact, est) == pytest.approx(1.0)

    def test_zero_exact_nonzero_estimate(self):
        assert frobenius_error(np.zeros((2, 2)), np.ones((2, 2))) == float("inf")

    def test_zero_exact_zero_estimate(self):
        assert frobenius_error(np.zeros((2, 2)), np.zeros((2, 2))) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            frobenius_error(np.zeros((2, 2)), np.zeros((3, 2)))
