"""Tests for the per-method access-trace models and memory estimates."""

import numpy as np
import pytest

from repro.memsim.profile import (
    ArrayRegion,
    MethodTraceModel,
    estimate_training_memory,
    profile_methods,
)

ARCH = [128, 96, 96, 10]


class TestArrayRegion:
    def test_row_extent(self):
        r = ArrayRegion(base=1000, rows=4, cols=8, itemsize=8)
        assert r.row_extent(0) == (1000, 64)
        assert r.row_extent(2) == (1000 + 2 * 64, 64)

    def test_column_extents_strided(self):
        r = ArrayRegion(base=0, rows=3, cols=4, itemsize=8)
        extents = list(r.column_extents(1))
        assert extents == [(8, 8), (40, 8), (72, 8)]

    def test_element(self):
        r = ArrayRegion(base=0, rows=3, cols=4, itemsize=8)
        assert r.element(1, 2) == (48, 8)

    def test_nbytes(self):
        assert ArrayRegion(0, 3, 4).nbytes == 96

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            ArrayRegion(0, 0, 4)


class TestTraceModel:
    def test_all_methods_produce_traces(self):
        model = MethodTraceModel(ARCH, batch=2, seed=0)
        for method in ("standard", "dropout", "adaptive_dropout", "mc", "alsh"):
            trace = list(model.step_trace(method))
            assert len(trace) > 0
            for addr, nbytes in trace:
                assert addr >= 0
                assert nbytes > 0

    def test_unknown_method(self):
        model = MethodTraceModel(ARCH, seed=0)
        with pytest.raises(ValueError, match="unknown method"):
            list(model.step_trace("quantum"))

    def test_sliced_dropout_touches_fewer_bytes_than_standard(self):
        """Column-sliced dropout reduces *bytes touched* even though its
        locality is worse (the §9.4 tension)."""
        model = MethodTraceModel(ARCH, batch=1, active_frac=0.05, seed=0)

        def total_bytes(method):
            return sum(n for _, n in model.step_trace(method))

        assert total_bytes("dropout_sliced") < total_bytes("standard")

    def test_mask_dropout_touches_more_bytes_than_standard(self):
        """The paper's mask-based dropout adds mask traffic on top of the
        full products (§9.2)."""
        model = MethodTraceModel(ARCH, batch=1, seed=0)

        def total_bytes(method):
            return sum(n for _, n in model.step_trace(method))

        assert total_bytes("dropout") > total_bytes("standard")

    def test_adaptive_touches_more_than_standard(self):
        """Standout adds mask traffic on top of full products (§9.2)."""
        model = MethodTraceModel(ARCH, batch=1, seed=0)

        def total_bytes(method):
            return sum(n for _, n in model.step_trace(method))

        assert total_bytes("adaptive_dropout") > total_bytes("standard")

    def test_invalid_arch(self):
        with pytest.raises(ValueError):
            MethodTraceModel([10], seed=0)


class TestProfiling:
    # Working set (W = 90 KB at itemsize 1) straddles the scaled L1 (12 KB)
    # the same way the paper's 8 MB matrices straddle the i9's caches.
    PROFILE_ARCH = [256, 300, 300, 300, 10]

    @pytest.fixture(scope="class")
    def report(self):
        return profile_methods(
            self.PROFILE_ARCH, batch=1, steps=2, hierarchy_scale=1 / 32, seed=0
        )

    def test_all_methods_reported(self, report):
        assert set(report) == {"standard", "dropout", "adaptive_dropout", "mc", "alsh"}

    def test_report_structure(self, report):
        for method, levels in report.items():
            assert {"L1", "L2", "L3", "dram_accesses"} <= set(levels)
            for lvl in ("L1", "L2", "L3"):
                assert levels[lvl]["hits"] >= 0
                assert 0.0 <= levels[lvl]["miss_rate"] <= 1.0

    def test_paper_ordering_dropout_family_misses_more_than_mc(self, report):
        """§9.4: Dropout (+24 %) and Adaptive-Dropout (+27 %) suffer more
        cache misses than MC-approx — reproduced as an ordering."""
        mc = report["mc"]["L1"]["misses"]
        assert report["dropout"]["L1"]["misses"] > 1.1 * mc
        assert report["adaptive_dropout"]["L1"]["misses"] >= report["dropout"]["L1"]["misses"]

    def test_alsh_misses_most(self, report):
        """Scattered column gathers + hash probes give ALSH-approx the worst
        cache behaviour (§9.4: "data that is not cache resident")."""
        others = [
            report[m]["L1"]["misses"]
            for m in ("standard", "dropout", "adaptive_dropout", "mc")
        ]
        assert report["alsh"]["L1"]["misses"] > max(others)

    def test_mc_beats_standard(self, report):
        """MC-approx's sampled row band reads less of W than STANDARD's
        full delta-propagation stream."""
        assert report["mc"]["L1"]["misses"] < report["standard"]["L1"]["misses"]


class TestMemoryEstimates:
    def test_common_components(self):
        breakdown = estimate_training_memory("standard", ARCH, batch=20)
        assert breakdown["weights"] > 0
        assert breakdown["activations"] > 0
        assert breakdown["total"] == sum(
            v for k, v in breakdown.items() if k != "total"
        )

    def test_alsh_has_table_overhead(self):
        alsh = estimate_training_memory("alsh", ARCH, optimizer="adam")
        std = estimate_training_memory("standard", ARCH, optimizer="adam")
        assert alsh["hash_tables"] > 0
        assert alsh["total"] > std["total"]

    def test_dropout_masks_small(self):
        drop = estimate_training_memory("dropout", ARCH, batch=1)
        assert 0 < drop["masks"] < drop["weights"]

    def test_adaptive_has_keep_probs(self):
        adaptive = estimate_training_memory("adaptive_dropout", ARCH, batch=1)
        assert adaptive["keep_probs"] == adaptive["masks"]

    def test_mc_sampling_buffers(self):
        mc = estimate_training_memory("mc", ARCH, batch=20)
        assert mc["sampling_buffers"] > 0

    def test_adam_state_double_sgd(self):
        sgd = estimate_training_memory("standard", ARCH, optimizer="sgd")
        adam = estimate_training_memory("standard", ARCH, optimizer="adam")
        assert sgd["optimizer_state"] == 0
        assert adam["optimizer_state"] == 2 * adam["weights"]

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            estimate_training_memory("quantum", ARCH)

    def test_unknown_optimizer(self):
        with pytest.raises(ValueError):
            estimate_training_memory("standard", ARCH, optimizer="lion")
