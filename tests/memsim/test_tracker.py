"""Tests for the allocation tracker."""

import pytest

from repro.memsim.tracker import AllocationTracker, array_nbytes


class TestArrayNBytes:
    def test_2d(self):
        assert array_nbytes((10, 20)) == 1600

    def test_custom_itemsize(self):
        assert array_nbytes((4,), itemsize=4) == 16


class TestTracker:
    def test_allocation_counters(self):
        t = AllocationTracker()
        t.allocate("a", 100)
        t.allocate("b", 200)
        assert t.current_bytes == 300
        assert t.peak_bytes == 300
        t.free("a")
        assert t.current_bytes == 200
        assert t.peak_bytes == 300
        assert t.total_allocated == 300

    def test_addresses_aligned_and_disjoint(self):
        t = AllocationTracker(alignment=64)
        base_a = t.allocate("a", 100)
        base_b = t.allocate("b", 50)
        assert base_a % 64 == 0
        assert base_b % 64 == 0
        assert base_b >= base_a + 100

    def test_duplicate_name_rejected(self):
        t = AllocationTracker()
        t.allocate("a", 10)
        with pytest.raises(ValueError, match="already live"):
            t.allocate("a", 10)

    def test_free_unknown(self):
        with pytest.raises(KeyError):
            AllocationTracker().free("ghost")

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            AllocationTracker().allocate("a", 0)

    def test_base_and_size_lookup(self):
        t = AllocationTracker()
        base = t.allocate("weights", 4096)
        assert t.base_of("weights") == base
        assert t.size_of("weights") == 4096
        assert t.live_names() == ["weights"]

    def test_snapshot(self):
        t = AllocationTracker()
        t.allocate("a", 128)
        snap = t.snapshot()
        assert snap == {
            "current_bytes": 128,
            "peak_bytes": 128,
            "total_allocated": 128,
        }

    def test_peak_tracks_high_water_mark(self):
        t = AllocationTracker()
        t.allocate("a", 500)
        t.free("a")
        t.allocate("b", 100)
        assert t.peak_bytes == 500

    def test_mlp_weight_bytes(self):
        # 4->3->2: (4*3+3) + (3*2+2) = 23 scalars * 8 bytes.
        assert AllocationTracker.mlp_weight_bytes([4, 3, 2]) == 23 * 8
