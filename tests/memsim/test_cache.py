"""Tests for the set-associative LRU cache simulator."""

import numpy as np
import pytest

from repro.memsim.cache import CacheHierarchy, CacheLevel, default_hierarchy


class TestCacheLevel:
    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            CacheLevel(1024, line_size=48)  # not a power of two
        with pytest.raises(ValueError):
            CacheLevel(100, line_size=64, associativity=8)  # too small

    def test_cold_miss_then_hit(self):
        cache = CacheLevel(64 * 16, line_size=64, associativity=2)
        assert cache.access_line(0) is False
        assert cache.access_line(0) is True
        assert cache.hits == 1
        assert cache.misses == 1

    def test_lru_eviction_order(self):
        # One set of 2 ways: n_sets = 1.
        cache = CacheLevel(64 * 2, line_size=64, associativity=2)
        cache.access_line(0)
        cache.access_line(1)
        cache.access_line(0)  # refresh 0: LRU is now 1
        cache.access_line(2)  # evicts 1
        assert cache.access_line(0) is True
        assert cache.access_line(1) is False

    def test_set_isolation(self):
        """Lines mapping to different sets never evict each other."""
        cache = CacheLevel(64 * 4, line_size=64, associativity=2)  # 2 sets
        cache.access_line(0)  # set 0
        cache.access_line(1)  # set 1
        cache.access_line(2)  # set 0
        cache.access_line(3)  # set 1
        # All four fit (2 per set): everything hits now.
        for line in range(4):
            assert cache.access_line(line) is True

    def test_miss_rate(self):
        cache = CacheLevel(64 * 8, line_size=64, associativity=8)
        assert cache.miss_rate() == 0.0
        cache.access_line(0)
        cache.access_line(0)
        assert cache.miss_rate() == pytest.approx(0.5)

    def test_flush_and_reset(self):
        cache = CacheLevel(64 * 8, line_size=64, associativity=8)
        cache.access_line(5)
        cache.reset_stats()
        assert cache.accesses == 0
        assert cache.access_line(5) is True  # contents survived reset_stats
        cache.flush()
        assert cache.access_line(5) is False  # flush emptied it


class TestHierarchy:
    def _small(self):
        return CacheHierarchy(
            [
                CacheLevel(64 * 4, 64, 2, "L1"),
                CacheLevel(64 * 32, 64, 8, "L2"),
            ]
        )

    def test_requires_levels(self):
        with pytest.raises(ValueError):
            CacheHierarchy([])

    def test_mixed_line_sizes_rejected(self):
        with pytest.raises(ValueError):
            CacheHierarchy(
                [CacheLevel(64 * 8, 64, 8), CacheLevel(128 * 8, 128, 8)]
            )

    def test_miss_cascades_to_next_level(self):
        h = self._small()
        h.access(0, 8)
        assert h.levels[0].misses == 1
        assert h.levels[1].misses == 1
        assert h.dram_accesses == 1
        h.access(0, 8)
        assert h.levels[0].hits == 1
        assert h.levels[1].accesses == 1  # not probed again

    def test_l2_catches_l1_evictions(self):
        h = self._small()
        # Touch more lines than L1 holds (4) but fewer than L2 (32).
        for line in range(8):
            h.access(line * 64, 8)
        before_dram = h.dram_accesses
        for line in range(8):
            h.access(line * 64, 8)
        assert h.dram_accesses == before_dram  # L2 absorbed everything

    def test_extent_spanning_lines(self):
        h = self._small()
        h.access(0, 64 * 3)  # touches 3 lines
        assert h.levels[0].accesses == 3

    def test_invalid_extent(self):
        with pytest.raises(ValueError):
            self._small().access(0, 0)

    def test_run_trace_and_report(self):
        h = self._small()
        h.run_trace([(0, 8), (64, 8), (0, 8)])
        report = h.report()
        assert report["L1"]["hits"] == 1
        assert report["L1"]["misses"] == 2
        assert report["dram_accesses"] == 2
        assert h.total_misses() == 2

    def test_flush(self):
        h = self._small()
        h.access(0, 8)
        h.flush()
        assert h.dram_accesses == 0
        assert h.levels[0].accesses == 0


class TestDefaultHierarchy:
    def test_three_levels_named(self):
        h = default_hierarchy()
        assert [lvl.name for lvl in h.levels] == ["L1", "L2", "L3"]

    def test_capacities_ordered(self):
        h = default_hierarchy()
        sizes = [lvl.n_sets * lvl.associativity for lvl in h.levels]
        assert sizes[0] < sizes[1] < sizes[2]

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            default_hierarchy(scale=0.0)

    def test_repeated_small_working_set_hits(self):
        """A working set smaller than L1 must hit ~100% after warm-up."""
        h = default_hierarchy(scale=1.0 / 64.0)
        trace = [(addr, 64) for addr in range(0, 2048, 64)]
        h.run_trace(trace)  # warm up
        h.levels[0].reset_stats()
        h.run_trace(trace * 5)
        assert h.levels[0].miss_rate() == 0.0

    def test_column_gather_worse_than_row_stream(self):
        """The locality effect behind the §9.4 findings: touching k scattered
        elements (one per row of a row-major matrix) costs k line fills,
        while a contiguous extent of k elements costs ~k/8."""
        row_bytes = 1024  # one matrix row
        n_rows = 64

        def dram(trace):
            h = default_hierarchy(scale=1.0 / 256.0)
            h.run_trace(trace)
            return h.dram_accesses

        column_walk = [(i * row_bytes, 8) for i in range(n_rows)]
        row_stream = [(0, 8 * n_rows)]
        assert dram(column_walk) > dram(row_stream)
