"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.method == "standard"
        assert args.dataset == "mnist"

    def test_invalid_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--dataset", "imagenet"])


class TestTheoryCommand:
    def test_prints_paper_table(self, capsys):
        assert main(["theory", "--c", "5"]) == 0
        out = capsys.readouterr().out
        assert "0.20" in out
        assert "1.99" in out
        assert "depth 4" in out


class TestFlopsCommand:
    def test_prints_speedups(self, capsys):
        assert main(["flops", "--arch", "100", "200", "10", "--batch", "20"]) == 0
        out = capsys.readouterr().out
        assert "speedup vs standard" in out
        assert "mc" in out


class TestDatasetsCommand:
    def test_lists_all_six(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("mnist", "kuzushiji", "fashion", "emnist_letters",
                     "norb", "cifar10"):
            assert name in out
        assert "104800" in out  # EMNIST train size from the paper


class TestRunCommand:
    def test_run_and_store_and_save(self, capsys, tmp_path):
        store = tmp_path / "results.jsonl"
        model = tmp_path / "model.npz"
        code = main(
            [
                "run",
                "--method", "standard",
                "--data-scale", "0.003",
                "--hidden-layers", "1",
                "--hidden-width", "16",
                "--epochs", "1",
                "--lr", "1e-2",
                "--store", str(store),
                "--save-model", str(model),
                "--confusion",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "acc=" in out
        assert "(predicted)" in out  # confusion matrix rendered
        assert store.exists()
        assert model.exists()
        # The stored result must load back.
        from repro.harness.results import ResultStore

        assert len(ResultStore(store).load()) == 1
        # The saved model must load back.
        from repro.nn.serialize import load_mlp

        net = load_mlp(model)
        assert net.layer_sizes[0] == 784

    def test_paper_defaults_flag(self, capsys):
        code = main(
            [
                "run",
                "--method", "mc",
                "--paper-defaults",
                "--data-scale", "0.003",
                "--hidden-layers", "1",
                "--hidden-width", "16",
                "--epochs", "1",
            ]
        )
        assert code == 0
        assert "mc^M" in capsys.readouterr().out


class TestCompareCommand:
    def test_compare_two_methods(self, capsys):
        code = main(
            [
                "compare",
                "--data-scale", "0.003",
                "--hidden-layers", "1",
                "--hidden-width", "16",
                "--epochs", "1",
                "--methods", "standard", "mc",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "standard^M" in out
        assert "mc^M" in out
