"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.method == "standard"
        assert args.dataset == "mnist"

    def test_invalid_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--dataset", "imagenet"])


class TestTheoryCommand:
    def test_prints_paper_table(self, capsys):
        assert main(["theory", "--c", "5"]) == 0
        out = capsys.readouterr().out
        assert "0.20" in out
        assert "1.99" in out
        assert "depth 4" in out


class TestFlopsCommand:
    def test_prints_speedups(self, capsys):
        assert main(["flops", "--arch", "100", "200", "10", "--batch", "20"]) == 0
        out = capsys.readouterr().out
        assert "speedup vs standard" in out
        assert "mc" in out


class TestDatasetsCommand:
    def test_lists_all_six(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("mnist", "kuzushiji", "fashion", "emnist_letters",
                     "norb", "cifar10"):
            assert name in out
        assert "104800" in out  # EMNIST train size from the paper


class TestRunCommand:
    def test_run_and_store_and_save(self, capsys, tmp_path):
        store = tmp_path / "results.jsonl"
        model = tmp_path / "model.npz"
        code = main(
            [
                "run",
                "--method", "standard",
                "--data-scale", "0.003",
                "--hidden-layers", "1",
                "--hidden-width", "16",
                "--epochs", "1",
                "--lr", "1e-2",
                "--store", str(store),
                "--save-model", str(model),
                "--confusion",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "acc=" in out
        assert "(predicted)" in out  # confusion matrix rendered
        assert store.exists()
        assert model.exists()
        # The stored result must load back.
        from repro.harness.results import ResultStore

        assert len(ResultStore(store).load()) == 1
        # The saved model must load back.
        from repro.nn.serialize import load_mlp

        net = load_mlp(model)
        assert net.layer_sizes[0] == 784

    def test_paper_defaults_flag(self, capsys):
        code = main(
            [
                "run",
                "--method", "mc",
                "--paper-defaults",
                "--data-scale", "0.003",
                "--hidden-layers", "1",
                "--hidden-width", "16",
                "--epochs", "1",
            ]
        )
        assert code == 0
        assert "mc^M" in capsys.readouterr().out


class TestCompareCommand:
    def test_compare_two_methods(self, capsys):
        code = main(
            [
                "compare",
                "--data-scale", "0.003",
                "--hidden-layers", "1",
                "--hidden-width", "16",
                "--epochs", "1",
                "--methods", "standard", "mc",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "standard^M" in out
        assert "mc^M" in out


@pytest.fixture(scope="module")
def probed_trace(tmp_path_factory):
    """One tiny probed traced run stored to a JSONL file."""
    store = tmp_path_factory.mktemp("trace") / "trace.jsonl"
    code = main(
        [
            "trace-report",
            "--method", "mc",
            "--data-scale", "0.003",
            "--hidden-layers", "2",
            "--hidden-width", "16",
            "--epochs", "1",
            "--probe-every", "2",
            "--store", str(store),
        ]
    )
    assert code == 0
    return store


class TestTraceReportCommand:
    def test_probed_run_prints_series(self, capsys, probed_trace):
        code = main(["trace-report", "--from-store", str(probed_trace)])
        assert code == 0
        out = capsys.readouterr().out
        assert "series:" in out
        assert "probe.mc.rel_bias" in out
        assert "probe.runs" in out

    def test_from_store_missing_file_fails_cleanly(self, capsys, tmp_path):
        code = main(["trace-report", "--from-store", str(tmp_path / "no.jsonl")])
        assert code == 2
        err = capsys.readouterr().err
        assert "trace file not found" in err
        assert "Traceback" not in err


class TestReportCommand:
    def test_writes_self_contained_html(self, capsys, probed_trace, tmp_path):
        out_path = tmp_path / "report.html"
        code = main(["report", str(probed_trace), "--out", str(out_path)])
        assert code == 0
        html = out_path.read_text()
        assert html.startswith("<!doctype html>")
        assert "Theorem 7.2 bound" in html
        assert "<script" not in html and "<link" not in html

    def test_no_theory_flag(self, probed_trace, tmp_path):
        out_path = tmp_path / "report.html"
        code = main(["report", str(probed_trace), "--out", str(out_path),
                     "--no-theory"])
        assert code == 0
        assert "Theorem 7.2 bound at c" not in out_path.read_text()

    def test_missing_file_fails_cleanly(self, capsys, tmp_path):
        code = main(["report", str(tmp_path / "missing.jsonl")])
        assert code == 2
        err = capsys.readouterr().err
        assert "trace file not found" in err

    def test_empty_file_fails_cleanly(self, capsys, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["report", str(empty)]) == 2
        assert "trace file is empty" in capsys.readouterr().err

    def test_all_corrupt_fails_cleanly(self, capsys, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("{not json\nnor this\n")
        assert main(["report", str(bad)]) == 2
        assert "2 corrupt line(s)" in capsys.readouterr().err

    def test_corrupt_lines_skipped_with_warning(self, capsys, probed_trace,
                                                tmp_path):
        mixed = tmp_path / "mixed.jsonl"
        mixed.write_text(probed_trace.read_text() + "{truncated\n")
        out_path = tmp_path / "report.html"
        code = main(["report", str(mixed), "--out", str(out_path)])
        assert code == 0
        captured = capsys.readouterr()
        assert "skipped 1 corrupt line(s)" in captured.err
        assert out_path.exists()


class TestMonitorCommand:
    def test_prints_rolling_summaries(self, capsys, probed_trace):
        code = main(["monitor", str(probed_trace)])
        assert code == 0
        out = capsys.readouterr().out
        assert "[trace]" in out
        assert "epochs=1" in out

    def test_missing_sink_fails_cleanly(self, capsys, tmp_path):
        code = main(["monitor", str(tmp_path / "missing.jsonl")])
        assert code == 2
        assert "sink file not found" in capsys.readouterr().err


class TestSweepProbeFlag:
    def test_probe_every_requires_trace(self, capsys, tmp_path):
        code = main(
            ["sweep", "--store", str(tmp_path / "s.jsonl"),
             "--probe-every", "5"]
        )
        assert code == 2
        assert "--probe-every requires --trace" in capsys.readouterr().err


class TestServeCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.requests == 256
        assert args.topk is None
        assert not args.smoke

    def test_serve_seeded_model(self, capsys):
        assert main(["serve", "--requests", "32"]) == 0
        out = capsys.readouterr().out
        assert "model demo@" in out
        assert "32/32 served, 0 shed, 0 failed" in out

    def test_serve_topk_mode(self, capsys):
        assert main(["serve", "--requests", "16", "--topk", "3"]) == 0
        assert "mode topk" in capsys.readouterr().out

    def test_serve_saved_checkpoint(self, capsys, tmp_path):
        from repro.nn.network import MLP
        from repro.nn.serialize import save_mlp

        path = tmp_path / "model.npz"
        save_mlp(MLP([6, 8, 4], seed=0), path)
        code = main(["serve", "--model", str(path), "--requests", "8"])
        assert code == 0
        assert "(mlp), mode logproba" in capsys.readouterr().out

    def test_serve_bench_parser(self):
        args = build_parser().parse_args(["serve-bench", "--quick", "--check"])
        assert args.quick and args.check
        assert args.min_speedup == 2.0


class TestStreamCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["stream"])
        assert args.batches == 500
        assert args.rebuild == "drift"
        assert not args.smoke

    def test_stream_short_session(self, capsys):
        assert main(["stream", "--batches", "12"]) == 0
        out = capsys.readouterr().out
        assert "stream: 12 batches" in out
        assert "policy drift" in out

    def test_stream_resumes_from_checkpoint_dir(self, capsys, tmp_path):
        assert main(["stream", "--batches", "10",
                     "--checkpoint-dir", str(tmp_path),
                     "--checkpoint-every", "5"]) == 0
        assert main(["stream", "--batches", "20",
                     "--checkpoint-dir", str(tmp_path),
                     "--checkpoint-every", "5"]) == 0
        out = capsys.readouterr().out
        assert "stream: 20 batches (10 this session" in out

    def test_stream_bench_parser(self):
        args = build_parser().parse_args(["stream-bench", "--quick", "--check"])
        assert args.quick and args.check
        assert args.min_throughput_ratio == 0.8
        assert args.min_recall == 0.4
