"""Catalogue coverage: every name an instrumented run emits is documented.

Satellite guarantee: run all six trainers with probes attached and
assert every counter, gauge and series that lands in the snapshot has a
catalogue entry (``COUNTER_CATALOG`` / ``GAUGE_CATALOG`` /
``SERIES_CATALOG``+``SERIES_PREFIXES``), so reports and docs can always
describe what they show.
"""

import pytest

from repro.obs import is_catalogued_series
from repro.obs.counters import COUNTER_CATALOG, GAUGE_CATALOG
from repro.obs.timeseries import SERIES_CATALOG, SERIES_PREFIXES

from .conftest import TRAINER_NAMES


@pytest.mark.parametrize("name", TRAINER_NAMES)
class TestProbedRunCoverage:
    def test_all_counters_catalogued(self, name, probed_runs):
        emitted = probed_runs[name]["snapshot"]["counters"]
        missing = sorted(set(emitted) - set(COUNTER_CATALOG))
        assert not missing, f"{name} emitted uncatalogued counters: {missing}"

    def test_all_gauges_catalogued(self, name, probed_runs):
        emitted = probed_runs[name]["snapshot"]["gauges"]
        missing = sorted(set(emitted) - set(GAUGE_CATALOG))
        assert not missing, f"{name} emitted uncatalogued gauges: {missing}"

    def test_all_series_catalogued(self, name, probed_runs):
        emitted = probed_runs[name]["snapshot"]["series"]
        missing = sorted(
            s for s in emitted if not is_catalogued_series(s)
        )
        assert not missing, f"{name} emitted uncatalogued series: {missing}"


class TestCatalogueHygiene:
    def test_descriptions_are_nonempty(self):
        for catalogue in (COUNTER_CATALOG, GAUGE_CATALOG, SERIES_CATALOG,
                          SERIES_PREFIXES):
            for name, desc in catalogue.items():
                assert desc.strip(), f"{name} has an empty description"

    def test_no_name_collisions_across_catalogues(self):
        names = (
            list(COUNTER_CATALOG) + list(GAUGE_CATALOG)
            + list(SERIES_CATALOG) + list(SERIES_PREFIXES)
        )
        assert len(names) == len(set(names))

    def test_probe_counters_present(self):
        for name in ("probe.runs", "probe.skipped", "probe.budget_disabled",
                     "probe.points"):
            assert name in COUNTER_CATALOG
        assert "lsh.garbage_frac" in GAUGE_CATALOG
