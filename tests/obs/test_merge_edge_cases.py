"""Edge cases for merge_snapshots (satellite: cross-worker merging).

The executor merges snapshots produced by workers that may be running
different recorder versions (a resumed sweep mixing old sink records
with new ones), so the merge must tolerate missing sections, None
entries and disagreeing gauge values without losing data.
"""

import pytest

from repro.obs import InMemoryRecorder, merge_snapshots

EMPTY = {"counters": {}, "gauges": {}, "timings": {}, "spans": {},
         "series": {}, "histograms": {}}


class TestEmptyInputs:
    def test_empty_list(self):
        assert merge_snapshots([]) == EMPTY

    def test_all_none(self):
        assert merge_snapshots([None, None, None]) == EMPTY


class TestGaugeConflicts:
    def test_conflicting_gauges_keep_high_water_mark(self):
        workers = [
            {"gauges": {"lsh.bucket_max_load": 10.0, "only.a": 1.0}},
            {"gauges": {"lsh.bucket_max_load": 25.0}},
            {"gauges": {"lsh.bucket_max_load": 3.0, "only.c": 9.0}},
        ]
        merged = merge_snapshots(workers)
        assert merged["gauges"] == {
            "lsh.bucket_max_load": 25.0,
            "only.a": 1.0,
            "only.c": 9.0,
        }

    def test_negative_gauges_still_take_max(self):
        merged = merge_snapshots(
            [{"gauges": {"g": -5.0}}, {"gauges": {"g": -2.0}}]
        )
        assert merged["gauges"]["g"] == -2.0


class TestDeepSpanTrees:
    def test_deeply_nested_span_paths_merge_by_path(self):
        rec_a, rec_b = InMemoryRecorder(), InMemoryRecorder()
        for rec in (rec_a, rec_b):
            with rec.span("fit"):
                for _ in range(2):
                    with rec.span("epoch"):
                        with rec.span("batch"):
                            with rec.span("forward"):
                                with rec.span("gemm"):
                                    pass
        merged = merge_snapshots([rec_a.snapshot(), rec_b.snapshot()])
        deep = "fit/epoch/batch/forward/gemm"
        assert merged["spans"][deep]["count"] == 4
        assert merged["spans"]["fit/epoch"]["count"] == 4
        assert merged["spans"]["fit"]["count"] == 2

    def test_sibling_paths_do_not_collide(self):
        rec = InMemoryRecorder()
        with rec.span("fit"):
            with rec.span("forward"):
                pass
        with rec.span("forward"):
            pass
        snap = merge_snapshots([rec.snapshot()])
        assert snap["spans"]["fit/forward"]["count"] == 1
        assert snap["spans"]["forward"]["count"] == 1


class TestMixedRecorderVersions:
    def test_pre_series_snapshot_merges_with_current(self):
        """A snapshot written before the series section existed (PR 3
        recorder) merges cleanly with one that has it."""
        old = {"counters": {"train.batches": 5}, "gauges": {},
               "timings": {}, "spans": {}}  # no "series" key
        new = InMemoryRecorder()
        new.add("train.batches", 3)
        new.series("train.epoch_loss", 0, 1.5)
        merged = merge_snapshots([old, new.snapshot()])
        assert merged["counters"]["train.batches"] == 8
        assert merged["series"] == {"train.epoch_loss": [[0, 1.5]]}

    def test_minimal_sections_tolerated(self):
        merged = merge_snapshots(
            [{"counters": {"c": 1}}, {"series": {"s": [[0, 2.0]]}}, {}]
        )
        assert merged["counters"] == {"c": 1}
        assert merged["series"] == {"s": [[0, 2.0]]}

    def test_merge_result_is_mergeable_again(self):
        """Aggregates written back to the sink can be re-merged (sweep
        of sweeps) without shape errors."""
        rec = InMemoryRecorder()
        rec.add("c", 2)
        rec.series("s", 1, 3.0)
        once = merge_snapshots([rec.snapshot(), None])
        twice = merge_snapshots([once, once])
        assert twice["counters"]["c"] == 4
        assert twice["series"]["s"] == [[1, 3.0], [1, 3.0]]
