"""Golden-trace regression tests.

Each of the five paper methods (plus the top-k oracle apparatus) trains
for two fixed-seed epochs; its final loss, accuracies, weight digest and
full counter snapshot must match the committed golden file.  Counters
are integers and compared exactly; floats use a tight relative
tolerance.  Regenerate after an intentional behaviour change with::

    PYTHONPATH=src python -m pytest tests/obs/test_golden_trace.py --update-goldens
"""

import json
import math
from pathlib import Path

import pytest

from .conftest import TRAINER_NAMES

pytestmark = pytest.mark.golden

GOLDEN_PATH = Path(__file__).resolve().parent.parent / "goldens" / "golden_traces.json"
REL_TOL = 1e-9


@pytest.fixture(scope="session")
def goldens(traced_runs, update_goldens):
    if update_goldens:
        payload = {
            name: {
                "weights_sha256": run["traced_digest"],
                "final_loss": run["final_loss"],
                "val_acc": run["val_acc"],
                "test_acc": run["test_acc"],
                "counters": run["snapshot"]["counters"],
                "gauges": run["snapshot"]["gauges"],
            }
            for name, run in traced_runs.items()
        }
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
    if not GOLDEN_PATH.exists():
        pytest.fail(
            f"golden file {GOLDEN_PATH} missing; "
            "run once with --update-goldens to create it"
        )
    return json.loads(GOLDEN_PATH.read_text())


def test_golden_file_covers_every_trainer(goldens):
    assert set(goldens) == set(TRAINER_NAMES)


@pytest.mark.parametrize("name", TRAINER_NAMES)
def test_final_metrics_match_golden(name, traced_runs, goldens):
    run, gold = traced_runs[name], goldens[name]
    assert run["traced_digest"] == gold["weights_sha256"]
    assert math.isclose(run["final_loss"], gold["final_loss"], rel_tol=REL_TOL)
    assert math.isclose(run["val_acc"], gold["val_acc"], rel_tol=REL_TOL)
    assert math.isclose(run["test_acc"], gold["test_acc"], rel_tol=REL_TOL)


@pytest.mark.parametrize("name", TRAINER_NAMES)
def test_counters_match_golden(name, traced_runs, goldens):
    """Counters are deterministic integers — compared exactly."""
    assert traced_runs[name]["snapshot"]["counters"] == goldens[name]["counters"]


@pytest.mark.parametrize("name", TRAINER_NAMES)
def test_gauges_match_golden(name, traced_runs, goldens):
    assert traced_runs[name]["snapshot"]["gauges"] == goldens[name]["gauges"]


@pytest.mark.parametrize("name", TRAINER_NAMES)
def test_flop_counters_are_consistent(name, traced_runs):
    """dense >= actual, and exact methods skip nothing."""
    counters = traced_runs[name]["snapshot"]["counters"]
    dense, actual = counters["flops.dense"], counters["flops.actual"]
    assert dense >= actual > 0
    if name in ("standard", "adaptive_dropout"):
        assert dense == actual
    else:
        assert actual < dense
