"""The single-file HTML report renderer."""

import pytest

from repro.obs import InMemoryRecorder, render_html_report, trace_record
from repro.obs.html import forward_error_by_layer
from repro.obs.timeseries import (
    SERIES_EPOCH_LOSS,
    SERIES_FWD_REL_ERROR,
    layer_series,
)


@pytest.fixture
def snapshot():
    rec = InMemoryRecorder()
    with rec.span("fit"):
        with rec.span("epoch"):
            pass
    rec.add("train.batches", 12)
    rec.gauge("lsh.garbage_frac", 0.25)
    rec.add_time("probe.forward_error", 0.05)
    rec.series(SERIES_EPOCH_LOSS, 0, 2.0)
    rec.series(SERIES_EPOCH_LOSS, 1, 1.5)
    for step in (10, 20):
        rec.series(layer_series(SERIES_FWD_REL_ERROR, 1), step, 0.1)
        rec.series(layer_series(SERIES_FWD_REL_ERROR, 2), step, 0.3)
    return rec.snapshot()


class TestForwardErrorByLayer:
    def test_mean_per_layer_sorted(self, snapshot):
        assert forward_error_by_layer(snapshot) == [(1, 0.1), (2, 0.3)]

    def test_empty_snapshot(self):
        assert forward_error_by_layer({}) == []


class TestRenderHtmlReport:
    def test_self_contained_document(self, snapshot):
        html = render_html_report([trace_record(snapshot, label="run-1")])
        assert html.startswith("<!doctype html>")
        assert html.count("<svg") == html.count("</svg>") > 0
        # no external assets: everything is inline
        assert "http://" not in html and "https://" not in html
        assert "<script" not in html and "<link" not in html

    def test_required_sections_present(self, snapshot):
        html = render_html_report([trace_record(snapshot, label="run-1")])
        for heading in ("Per-layer forward error", "Counters",
                        "Spans &amp; timings", "Time series",
                        "Probe overhead"):
            assert heading in html, heading

    def test_theory_overlay_uses_both_series_colors(self, snapshot):
        html = render_html_report(
            [trace_record(snapshot)],
            theory_bound=[(1, 0.2), (2, 0.44)],
            theory_label="Theorem 7.2 bound at c = 5",
        )
        assert "var(--s1)" in html  # measured, series-1 blue
        assert "var(--s2)" in html  # analytical bound, series-2 orange
        assert "Theorem 7.2 bound" in html
        assert 'class="legend"' in html

    def test_dark_mode_tokens_present(self, snapshot):
        html = render_html_report([trace_record(snapshot)])
        assert "prefers-color-scheme: dark" in html
        assert ":root[data-theme=" in html

    def test_labels_are_escaped(self, snapshot):
        html = render_html_report(
            [trace_record(snapshot, label="<script>x</script>"),
             trace_record(snapshot, label="other")],
            title="a <b> title",
        )
        assert "<script>" not in html
        assert "&lt;script&gt;" in html

    def test_corrupt_count_surfaced(self, snapshot):
        html = render_html_report([trace_record(snapshot)], corrupt=3)
        assert "3 corrupt line(s) skipped" in html

    def test_empty_traces_render_without_error(self):
        html = render_html_report([])
        assert "0 trace record(s)" in html
