"""Unit tests for the recorder, span and merge machinery."""

import numpy as np
import pytest

from repro.obs import (
    NULL_RECORDER,
    COUNTER_CATALOG,
    InMemoryRecorder,
    NullRecorder,
    Span,
    gemm_flops,
    merge_snapshots,
)
from repro.obs.counters import GAUGE_CATALOG
from repro.obs.spans import SpanAggregator


class TestNullRecorder:
    def test_disabled_and_shared(self):
        assert NULL_RECORDER.enabled is False
        assert isinstance(NULL_RECORDER, NullRecorder)

    def test_all_methods_are_noops(self):
        rec = NullRecorder()
        rec.add("x")
        rec.add("x", 5)
        rec.gauge("g", 1.0)
        rec.add_time("t", 0.5)
        with rec.span("s"):
            pass
        assert rec.snapshot() == {
            "counters": {},
            "gauges": {},
            "timings": {},
            "spans": {},
            "series": {},
            "histograms": {},
        }

    def test_span_is_shared_instance(self):
        rec = NullRecorder()
        assert rec.span("a") is rec.span("b")


class TestInMemoryRecorder:
    def test_counters_accumulate(self):
        rec = InMemoryRecorder()
        rec.add("c")
        rec.add("c", 4)
        assert rec.get("c") == 5
        assert rec.get("missing") == 0

    def test_gauge_keeps_last_value(self):
        rec = InMemoryRecorder()
        rec.gauge("g", 3.0)
        rec.gauge("g", 1.0)
        assert rec.snapshot()["gauges"] == {"g": 1.0}

    def test_timings_accumulate_count_and_total(self):
        rec = InMemoryRecorder()
        rec.add_time("phase", 0.25)
        rec.add_time("phase", 0.5)
        assert rec.snapshot()["timings"]["phase"] == {
            "count": 2,
            "total": 0.75,
        }

    def test_snapshot_converts_integral_floats(self):
        rec = InMemoryRecorder()
        rec.add("int_counter", 2.0)
        rec.add("float_counter", 0.5)
        counters = rec.snapshot()["counters"]
        assert counters["int_counter"] == 2
        assert isinstance(counters["int_counter"], int)
        assert counters["float_counter"] == 0.5

    def test_nested_spans_build_paths(self):
        rec = InMemoryRecorder()
        with rec.span("fit"):
            with rec.span("epoch"):
                pass
            with rec.span("epoch"):
                pass
        spans = rec.snapshot()["spans"]
        assert set(spans) == {"fit", "fit/epoch"}
        assert spans["fit/epoch"]["count"] == 2
        assert spans["fit"]["count"] == 1


class TestSpanAggregator:
    def test_paths_and_totals(self):
        agg = SpanAggregator()
        assert agg.current_path() == ""
        with Span(agg, "a"):
            assert agg.current_path() == "a"
            with Span(agg, "b"):
                assert agg.current_path() == "a/b"
        assert agg.current_path() == ""
        assert set(agg.totals) == {"a", "a/b"}
        assert all(total >= 0 for _, total in agg.totals.values())


class TestMergeSnapshots:
    def test_merge_rules(self):
        a = {
            "counters": {"c": 1, "only_a": 2},
            "gauges": {"g": 5.0},
            "timings": {"t": {"count": 1, "total": 0.5}},
            "spans": {"fit": {"count": 1, "total": 1.0}},
        }
        b = {
            "counters": {"c": 3},
            "gauges": {"g": 2.0, "only_b": 7.0},
            "timings": {"t": {"count": 2, "total": 0.25}},
            "spans": {"fit": {"count": 1, "total": 2.0}},
        }
        merged = merge_snapshots([a, None, b])
        assert merged["counters"] == {"c": 4, "only_a": 2}
        assert merged["gauges"] == {"g": 5.0, "only_b": 7.0}
        assert merged["timings"]["t"] == {"count": 3, "total": 0.75}
        assert merged["spans"]["fit"] == {"count": 2, "total": 3.0}

    def test_merge_of_nothing_is_empty(self):
        merged = merge_snapshots([None, {}])
        assert merged == {
            "counters": {},
            "gauges": {},
            "timings": {},
            "spans": {},
            "series": {},
            "histograms": {},
        }

    def test_merge_is_associative_on_counters(self):
        snaps = [
            {"counters": {"c": i}, "gauges": {}, "timings": {}, "spans": {}}
            for i in range(5)
        ]
        left = merge_snapshots([merge_snapshots(snaps[:2]), *snaps[2:]])
        flat = merge_snapshots(snaps)
        assert left["counters"] == flat["counters"]


class TestCatalogue:
    def test_every_counter_constant_is_catalogued(self):
        from repro.obs import counters as mod
        from repro.obs.counters import HISTOGRAM_CATALOG, HISTOGRAM_PREFIXES

        # slo.burn.<name> gauges carry user-defined spec names, so the
        # family is documented by prefix rather than catalogued.
        skipped = ("GAUGE_CATALOG", "SLO_BURN_PREFIX")
        for attr in mod.__all__:
            value = getattr(mod, attr)
            if not isinstance(value, str) or attr in skipped:
                continue
            assert (
                value in COUNTER_CATALOG
                or value in GAUGE_CATALOG
                or value in HISTOGRAM_CATALOG
                or value in HISTOGRAM_PREFIXES
            ), f"{attr}={value!r} missing from the catalogues"

    def test_gemm_flops_convention(self):
        # 2 FLOPs per multiply-accumulate.
        assert gemm_flops(3, 4, 5) == 2 * 3 * 4 * 5
        a, b = np.ones((3, 4)), np.ones((4, 5))
        assert gemm_flops(*a.shape, b.shape[1]) == 120


class TestRecorderPerturbation:
    def test_recording_never_touches_numpy_global_state(self):
        """Counters must not consume randomness."""
        state_before = np.random.get_state()[1].copy()
        rec = InMemoryRecorder()
        for i in range(100):
            rec.add("c", i)
            rec.gauge("g", i)
            with rec.span("s"):
                pass
        state_after = np.random.get_state()[1]
        assert (state_before == state_after).all()
