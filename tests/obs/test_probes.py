"""Quality-probe behaviour: cadence, budget, read-only-ness, resume.

The bitwise read-only guarantee itself lives in ``test_noop.py`` (the
probed digests must match the pre-instrumentation bytes); this file
covers the manager mechanics and the kill-resume series identity.
"""

import numpy as np
import pytest

from repro.core.registry import make_trainer
from repro.nn.network import MLP
from repro.obs import InMemoryRecorder, is_catalogued_series
from repro.obs.counters import (
    PROBE_DISABLED,
    PROBE_RUNS,
    PROBE_SKIPPED,
)
from repro.obs.probes import (
    ForwardErrorProbe,
    LSHRecallProbe,
    MCEstimatorProbe,
    Probe,
    ProbeManager,
    default_probes,
)
from repro.obs.timeseries import SERIES_EPOCH_TIME


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(3)
    return rng.normal(size=(60, 12)), rng.integers(0, 3, size=60)


def build(method="standard", recorder=None, **kwargs):
    net = MLP([12, 16, 16, 3], seed=7)
    return make_trainer(method, net, seed=11, recorder=recorder, **kwargs)


def manager(**kwargs):
    kwargs.setdefault("probe_every", 2)
    kwargs.setdefault("budget", None)
    kwargs.setdefault("seed", 0)
    return ProbeManager(default_probes(), **kwargs)


class TestProbeManager:
    def test_cadence(self, data):
        x, y = data
        trainer = build(recorder=InMemoryRecorder())
        m = ProbeManager([ForwardErrorProbe()], probe_every=3, seed=0)
        trainer.attach_probes(m)
        trainer.fit(x, y, epochs=1, batch_size=10)  # 6 batches
        counters = trainer.obs.snapshot()["counters"]
        assert counters[PROBE_RUNS] == 2  # steps 3 and 6

    def test_validation(self):
        with pytest.raises(ValueError, match="probe_every"):
            ProbeManager([], probe_every=0)
        with pytest.raises(ValueError, match="budget"):
            ProbeManager([], budget=-1.0)

    def test_disabled_recorder_skips_all_work(self, data):
        x, y = data

        class Exploding(Probe):
            name = "exploding"

            def run(self, trainer, step, x, y, rng, recorder):
                raise AssertionError("probe ran under a null recorder")

        trainer = build()  # NULL_RECORDER
        trainer.attach_probes(ProbeManager([Exploding()], probe_every=1))
        trainer.fit(x, y, epochs=1, batch_size=10)

    def test_unsupported_probe_counts_as_skipped(self, data):
        x, y = data
        trainer = build("standard", recorder=InMemoryRecorder())
        m = ProbeManager(
            [LSHRecallProbe(), MCEstimatorProbe()], probe_every=2, seed=0
        )
        trainer.attach_probes(m)
        trainer.fit(x, y, epochs=1, batch_size=10)
        counters = trainer.obs.snapshot()["counters"]
        # standard has neither LSH indexes nor an MC node budget.
        assert counters[PROBE_SKIPPED] == 2 * 3  # 2 probes x 3 firings
        assert PROBE_RUNS not in counters

    def test_budget_overrun_disables_probe_for_rest_of_run(self, data):
        x, y = data
        trainer = build(recorder=InMemoryRecorder())
        m = ProbeManager([ForwardErrorProbe()], probe_every=1, budget=0.0,
                         seed=0)
        trainer.attach_probes(m)
        trainer.fit(x, y, epochs=1, batch_size=10)
        counters = trainer.obs.snapshot()["counters"]
        # First firing runs (and overruns the zero budget); the rest skip.
        assert counters[PROBE_RUNS] == 1
        assert counters[PROBE_DISABLED] == 1
        assert m.disabled == {"forward_error"}

    def test_state_dict_round_trip(self, data):
        x, y = data
        trainer = build(recorder=InMemoryRecorder())
        m = manager()
        trainer.attach_probes(m)
        trainer.fit(x, y, epochs=1, batch_size=10)
        state = m.state_dict()
        fresh = manager(seed=999)
        fresh.load_state_dict(state)
        assert fresh.step == m.step
        assert fresh.disabled == m.disabled
        assert (
            fresh.rng.bit_generator.state == m.rng.bit_generator.state
        )


class TestProbeSeries:
    @pytest.mark.parametrize("method", ["alsh", "mc", "dropout"])
    def test_all_emitted_series_are_catalogued(self, data, method):
        x, y = data
        trainer = build(method, recorder=InMemoryRecorder())
        trainer.attach_probes(manager())
        trainer.fit(x, y, epochs=1, batch_size=10)
        for name in trainer.obs.snapshot()["series"]:
            assert is_catalogued_series(name), name

    def test_probe_series_indexed_by_batch_step(self, data):
        x, y = data
        trainer = build("mc", recorder=InMemoryRecorder())
        trainer.attach_probes(manager(probe_every=2))
        trainer.fit(x, y, epochs=1, batch_size=10)
        series = trainer.obs.snapshot()["series"]
        probe_names = [n for n in series if n.startswith("probe.")]
        assert probe_names
        for name in probe_names:
            indices = [i for i, _ in series[name]]
            assert all(i % 2 == 0 for i in indices), name


class TestKillResumeSeriesIdentity:
    @pytest.mark.parametrize("method", ["standard", "alsh", "mc"])
    def test_resumed_series_identical(self, data, tmp_path, method):
        """A killed-and-resumed probed run reproduces the identical
        series, index-for-index — wall-clock series excepted."""
        x, y = data

        def fit(trainer, epochs, **kw):
            return trainer.fit(x, y, epochs=epochs, batch_size=10, **kw)

        t_full = build(method, recorder=InMemoryRecorder())
        t_full.attach_probes(manager())
        fit(t_full, 4)

        t_killed = build(method, recorder=InMemoryRecorder())
        t_killed.attach_probes(manager())
        fit(t_killed, 2, checkpoint_every=1, checkpoint_dir=tmp_path)

        t_resumed = build(method, recorder=InMemoryRecorder())
        t_resumed.attach_probes(manager())
        fit(t_resumed, 4, checkpoint_every=1, checkpoint_dir=tmp_path)

        full = t_full.obs.snapshot()["series"]
        resumed = t_resumed.obs.snapshot()["series"]
        assert set(full) == set(resumed)
        for name in full:
            if name == SERIES_EPOCH_TIME:
                continue  # wall-clock: values differ, indices must not
            assert full[name] == resumed[name], name
        assert [i for i, _ in full[SERIES_EPOCH_TIME]] == [
            i for i, _ in resumed[SERIES_EPOCH_TIME]
        ]
