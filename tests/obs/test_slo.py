"""Declarative SLO specs, error-budget burn and the slo-check CLI gate."""

import json
import math

import pytest

from repro.cli import main
from repro.obs import InMemoryRecorder
from repro.obs.counters import SLO_BURN_PREFIX
from repro.obs.export import MetricsServer
from repro.obs.sink import trace_record, write_trace
from repro.obs.slo import (
    attach_burn_gauges,
    burn_gauges,
    evaluate_slos,
    load_slo_spec,
    render_slo_results,
)


def _spec_file(tmp_path, entries):
    path = tmp_path / "slo.json"
    path.write_text(json.dumps({"slos": entries}), encoding="utf-8")
    return path


def _snapshot():
    rec = InMemoryRecorder()
    rec.add("serve.requests", 1000)
    rec.add("serve.shed.queue_full", 5)
    rec.gauge("lsh.garbage_frac", 0.2)
    rec.series("serve.head.recall", 0, 0.8)
    rec.series("serve.head.recall", 1, 0.95)
    for _ in range(99):
        rec.histogram("serve.latency_s", 0.002)
    rec.histogram("serve.latency_s", 0.080)  # the p100 tail
    return rec.snapshot()


class TestLoadSpec:
    def test_valid_spec_loads(self, tmp_path):
        entries = load_slo_spec(
            _spec_file(
                tmp_path,
                [{"name": "p99", "histogram": "serve.latency_s",
                  "quantile": 0.99, "max": 1.0}],
            )
        )
        assert entries[0]["name"] == "p99"

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_slo_spec(tmp_path / "absent.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_slo_spec(path)

    @pytest.mark.parametrize(
        "entry,match",
        [
            ({"gauge": "g", "max": 1}, "name"),
            ({"name": "x", "max": 1}, "exactly one source"),
            ({"name": "x", "gauge": "g", "counter": "c", "max": 1},
             "exactly one source"),
            ({"name": "x", "histogram": "h", "max": 1}, "quantile"),
            ({"name": "x", "ratio": "not-a-pair", "max": 1}, "ratio"),
            ({"name": "x", "gauge": "g"}, 'one of "max"/"min"'),
            ({"name": "x", "gauge": "g", "max": 1, "min": 0},
             'one of "max"/"min"'),
        ],
    )
    def test_invalid_entries_rejected(self, tmp_path, entry, match):
        with pytest.raises(ValueError, match=match):
            load_slo_spec(_spec_file(tmp_path, [entry]))

    def test_empty_spec_rejected(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text('{"slos": []}', encoding="utf-8")
        with pytest.raises(ValueError, match="at least one entry"):
            load_slo_spec(path)


class TestEvaluate:
    def test_max_bound_within_and_violated(self):
        results = evaluate_slos(
            _snapshot(),
            [
                {"name": "shed", "ratio": ["serve.shed.queue_full",
                                           "serve.requests"], "max": 0.01},
                {"name": "garbage", "gauge": "lsh.garbage_frac", "max": 0.1},
            ],
        )
        shed, garbage = results
        assert shed.ok and shed.burn == pytest.approx(0.5)
        assert not garbage.ok and garbage.burn == pytest.approx(2.0)

    def test_min_bound_uses_inverse_burn(self):
        (res,) = evaluate_slos(
            _snapshot(),
            [{"name": "recall", "series_last": "serve.head.recall",
              "min": 0.9}],
        )
        assert res.ok
        assert res.value == pytest.approx(0.95)
        assert res.burn == pytest.approx(0.9 / 0.95)

    def test_histogram_quantile_with_scale(self):
        (res,) = evaluate_slos(
            _snapshot(),
            [{"name": "p50_ms", "histogram": "serve.latency_s",
              "quantile": 0.5, "scale": 1000.0, "max": 10.0}],
        )
        assert res.ok
        assert res.value == pytest.approx(2.0, rel=0.15)  # one bucket width

    def test_absent_metric_fails_closed(self):
        (res,) = evaluate_slos(
            {}, [{"name": "ghost", "counter": "never.recorded", "max": 1}]
        )
        assert not res.ok
        assert math.isinf(res.burn)

    def test_absent_ok_passes_with_zero_burn(self):
        (res,) = evaluate_slos(
            {},
            [{"name": "ghost", "counter": "never.recorded", "max": 1,
              "absent_ok": True}],
        )
        assert res.ok and res.burn == 0.0

    def test_ratio_zero_over_zero_reads_as_zero(self):
        snapshot = {"counters": {"serve.requests": 0,
                                 "serve.shed.queue_full": 0}}
        (res,) = evaluate_slos(
            snapshot,
            [{"name": "shed", "ratio": ["serve.shed.queue_full",
                                        "serve.requests"], "max": 0.01}],
        )
        assert res.ok and res.value == 0.0


class TestBurnGauges:
    def test_gauge_names_use_the_prefix(self):
        results = evaluate_slos(
            _snapshot(), [{"name": "garbage", "gauge": "lsh.garbage_frac",
                           "max": 0.1}]
        )
        gauges = burn_gauges(results)
        assert gauges == {SLO_BURN_PREFIX + "garbage": pytest.approx(2.0)}

    def test_attach_clamps_infinite_burn(self):
        snapshot = attach_burn_gauges(
            {}, [{"name": "ghost", "counter": "never.recorded", "max": 1}]
        )
        assert snapshot["gauges"][SLO_BURN_PREFIX + "ghost"] == 1e9
        json.dumps(snapshot)  # stays JSON-safe

    def test_attach_does_not_mutate_the_input(self):
        original = _snapshot()
        gauges_before = dict(original["gauges"])
        attach_burn_gauges(
            original, [{"name": "g", "gauge": "lsh.garbage_frac", "max": 1}]
        )
        assert original["gauges"] == gauges_before


class TestRender:
    def test_violations_are_loud(self):
        results = evaluate_slos(
            _snapshot(), [{"name": "garbage", "gauge": "lsh.garbage_frac",
                           "max": 0.1}]
        )
        text = render_slo_results(results)
        assert "VIOLATED" in text
        assert "1 violated" in text

    def test_healthy_summary(self):
        results = evaluate_slos(
            _snapshot(), [{"name": "garbage", "gauge": "lsh.garbage_frac",
                           "max": 0.5}]
        )
        assert "all within budget" in render_slo_results(results)


class TestSloCheckCli:
    def _store(self, tmp_path):
        store = tmp_path / "trace.jsonl"
        write_trace(store, trace_record(_snapshot(), label="serve-test"))
        return store

    def test_exit_zero_when_within_budget(self, tmp_path, capsys):
        spec = _spec_file(
            tmp_path,
            [{"name": "shed", "ratio": ["serve.shed.queue_full",
                                        "serve.requests"], "max": 0.01}],
        )
        code = main(["slo-check", str(spec),
                     "--from-store", str(self._store(tmp_path))])
        assert code == 0
        assert "all within budget" in capsys.readouterr().out

    def test_exit_one_on_violation(self, tmp_path, capsys):
        spec = _spec_file(
            tmp_path,
            [{"name": "p99_ms", "histogram": "serve.latency_s",
              "quantile": 0.99, "scale": 1000.0, "max": 1e-9}],
        )
        code = main(["slo-check", str(spec),
                     "--from-store", str(self._store(tmp_path))])
        assert code == 1
        assert "VIOLATED" in capsys.readouterr().out

    def test_exit_two_on_bad_spec(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        code = main(["slo-check", str(bad),
                     "--from-store", str(self._store(tmp_path))])
        assert code == 2

    def test_exit_two_on_missing_store(self, tmp_path):
        spec = _spec_file(
            tmp_path, [{"name": "x", "counter": "c", "max": 1}]
        )
        code = main(["slo-check", str(spec),
                     "--from-store", str(tmp_path / "absent.jsonl")])
        assert code == 2

    def test_url_mode_scrapes_a_live_exporter(self, tmp_path, capsys):
        spec = _spec_file(
            tmp_path,
            [{"name": "garbage", "gauge": "lsh.garbage_frac", "max": 0.5}],
        )
        with MetricsServer(_snapshot, port=0) as server:
            code = main(["slo-check", str(spec), "--url", server.url])
        assert code == 0
        assert "all within budget" in capsys.readouterr().out

    def test_url_mode_unreachable_exits_two(self, tmp_path):
        spec = _spec_file(
            tmp_path, [{"name": "x", "counter": "c", "max": 1}]
        )
        code = main(["slo-check", str(spec),
                     "--url", "http://127.0.0.1:1/"])
        assert code == 2
