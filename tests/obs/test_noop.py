"""Bitwise no-op guarantee of the observability layer.

The digests below were captured from the *pre-instrumentation* trainers
(the commit before ``repro.obs`` existed) on the exact fixed-seed recipe
of ``tests/obs/conftest.py``.  Training under the default
:data:`~repro.obs.NULL_RECORDER` must still produce byte-identical
weights — instrumentation that shifts a single ULP or consumes one extra
RNG draw fails this file.  A second check asserts the *enabled* recorder
does not perturb training either: same seed, same bytes.
"""

import pytest

from repro.core import make_trainer
from repro.nn.network import MLP
from repro.obs import NULL_RECORDER

from .conftest import TRAINER_NAMES

#: sha256 of concatenated (W, b) bytes after the fixed-seed 2-epoch run,
#: captured before the trainers were instrumented.  The "alsh" digest was
#: re-pinned when ``MIPSIndex.update`` learned to refit its P-transform
#: scale on norm overflow (the fixed-seed run's weight columns grow past
#: the build-time max norm, so the bugfix legitimately changes the
#: trajectory); the re-pin was validated by the relative checks below
#: (null == traced == probed bytes) holding across the change.
PRE_INSTRUMENTATION_DIGESTS = {
    "standard": "3e6fa6b3a0fb00ee7e28c1d3853f307c24253500c6b1f514575e443b246e8b13",
    "dropout": "9e02a9390fdfdc2841d3358223140294480e67e3e97fdbac06a4799a787e65c5",
    "adaptive_dropout": "27fa5392491cd965ef86208f2befad4f5dbfcd79acdc7eae53baae4609ef7d16",
    "alsh": "bfc3f01081cfac31175e0569e57b5bc55bb1256eaf60d620d7cd4143d0849b41",
    "mc": "590e0810698e3b9e35a4d1a3455bacb4ceba8475de3fc80b20b50ed411f5959c",
    "topk": "881f4a23cbd27ea32290f1091b1d6a8753fc84b35d12e807262f5628edecf3a1",
}


def test_every_trainer_is_covered():
    assert set(PRE_INSTRUMENTATION_DIGESTS) == set(TRAINER_NAMES)


@pytest.mark.parametrize("name", TRAINER_NAMES)
def test_null_recorder_is_bitwise_noop(name, traced_runs):
    """Instrumented trainers reproduce the pre-instrumentation bytes."""
    assert traced_runs[name]["null_digest"] == PRE_INSTRUMENTATION_DIGESTS[name]


@pytest.mark.parametrize("name", TRAINER_NAMES)
def test_enabled_recorder_does_not_perturb_training(name, traced_runs):
    """Counting work must not change the work: traced == untraced bytes."""
    assert traced_runs[name]["traced_digest"] == traced_runs[name]["null_digest"]


@pytest.mark.parametrize("name", TRAINER_NAMES)
def test_probes_do_not_perturb_training(name, probed_runs):
    """Quality probes are strictly read-only: a probed run reproduces the
    pre-instrumentation bytes exactly, at any cadence."""
    assert probed_runs[name]["digest"] == PRE_INSTRUMENTATION_DIGESTS[name]


@pytest.mark.parametrize("name", TRAINER_NAMES)
def test_default_recorder_is_the_shared_null_singleton(name):
    trainer = make_trainer(name, MLP([8, 4, 4, 3], seed=0), seed=0)
    assert trainer.obs is NULL_RECORDER
    assert trainer.obs.enabled is False
