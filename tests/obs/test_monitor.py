"""Monitor tests: JSONL tailing (truncation/rotation) and summary lines."""

import itertools
import json

from repro.obs import InMemoryRecorder
from repro.obs.monitor import follow_jsonl, monitor_sink, summarize_record
from repro.obs.sink import trace_record


class TestFollowJsonl:
    def test_reads_existing_records_without_follow(self, tmp_path):
        path = tmp_path / "sink.jsonl"
        path.write_text('{"a": 1}\n{"a": 2}\n', encoding="utf-8")
        assert [r["a"] for r in follow_jsonl(path)] == [1, 2]

    def test_corrupt_line_skipped(self, tmp_path):
        path = tmp_path / "sink.jsonl"
        path.write_text('{"a": 1}\nnot json\n{"a": 2}\n', encoding="utf-8")
        assert [r["a"] for r in follow_jsonl(path)] == [1, 2]

    def test_partial_final_line_retried_after_writer_finishes(self, tmp_path):
        path = tmp_path / "sink.jsonl"
        path.write_text('{"a": 1}\n{"a": 2', encoding="utf-8")
        # Bound the number of polls so a regression fails instead of hanging.
        polls = itertools.count()
        gen = follow_jsonl(
            path, follow=True, poll=0.001, stop=lambda: next(polls) > 500
        )
        assert next(gen)["a"] == 1
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(', "b": 3}\n')
        record = next(gen)
        assert record == {"a": 2, "b": 3}

    def test_truncation_resets_to_top_of_file(self, tmp_path):
        """Regression: a shrunk sink (rewrite/rotation) must be re-read,
        not silently tailed past EOF forever."""
        path = tmp_path / "sink.jsonl"
        path.write_text('{"a": 1}\n{"a": 2}\n', encoding="utf-8")
        polls = itertools.count()
        gen = follow_jsonl(
            path, follow=True, poll=0.001, stop=lambda: next(polls) > 500
        )
        assert next(gen)["a"] == 1
        assert next(gen)["a"] == 2
        # rotate: a fresh, smaller file swaps in at the same path
        path.write_text('{"fresh": true}\n', encoding="utf-8")
        assert next(gen) == {"fresh": True}

    def test_missing_file_waits_until_created(self, tmp_path):
        path = tmp_path / "late.jsonl"
        polls = itertools.count()

        def stop():
            n = next(polls)
            if n == 3:
                path.write_text('{"born": 1}\n', encoding="utf-8")
            return n > 500

        gen = follow_jsonl(path, follow=True, poll=0.001, stop=stop)
        assert next(gen) == {"born": 1}


def _serve_record():
    rec = InMemoryRecorder()
    rec.add("serve.requests", 500)
    rec.add("serve.shed.queue_full", 7)
    rec.add("serve.handler_errors", 2)
    for _ in range(10):
        rec.histogram("serve.latency_s", 0.004)
    return trace_record(rec.snapshot(), label="serve-smoke", elapsed=2.0)


def _stream_record():
    rec = InMemoryRecorder()
    rec.add("stream.batches", 600)
    rec.add("stream.rebuilds", 4)
    rec.add("stream.compactions", 1)
    rec.series("stream.accuracy", 0, 0.81)
    for _ in range(5):
        rec.histogram("stream.batch_s", 0.002)
    return trace_record(rec.snapshot(), label="stream-drift")


class TestSummarizeRecord:
    def test_serve_snapshot_line(self):
        line = summarize_record(_serve_record())
        assert line.startswith("[serve] serve-smoke:")
        assert "served=500" in line
        assert "qps=250" in line
        assert "shed=7" in line
        assert "handler_errors=2" in line
        assert "p99=" in line

    def test_stream_snapshot_line(self):
        line = summarize_record(_stream_record())
        assert line.startswith("[stream] stream-drift:")
        assert "batches=600" in line
        assert "rebuilds=4" in line
        assert "compactions=1" in line
        assert "acc=0.8100" in line
        assert "batch_p99=" in line

    def test_request_trace_line(self):
        record = {
            "kind": "request_trace",
            "events": [
                {"request": "r000001", "event": "enqueued", "t": 0.0},
                {"request": "r000001", "event": "completed", "t": 1.0},
                {"request": "r000002", "event": "enqueued", "t": 2.0},
            ],
        }
        line = summarize_record(record)
        assert "3 event(s)" in line
        assert "2 request(s)" in line

    def test_executor_outcome_line(self):
        line = summarize_record(
            {"status": "failed", "key": "run-3", "error": "boom"}
        )
        assert line == "[failed] run-3: boom"

    def test_unknown_shape_returns_none(self):
        assert summarize_record({"mystery": 1}) is None


class TestMonitorSink:
    def test_counts_summarized_records(self, tmp_path):
        path = tmp_path / "sink.jsonl"
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(_serve_record()) + "\n")
            fh.write(json.dumps(_stream_record()) + "\n")
            fh.write('{"mystery": 1}\n')
        lines = []
        assert monitor_sink(path, out=lines.append) == 2
        assert lines[0].startswith("[serve]")
        assert lines[1].startswith("[stream]")
