"""Shared machinery for the observability tests.

Every trainer is run twice on the tiny dataset with identical seeds —
once with the default :data:`~repro.obs.NULL_RECORDER` and once with an
:class:`~repro.obs.InMemoryRecorder` — and the resulting weight digests,
final metrics and counter snapshots feed both the bitwise no-op test and
the golden-trace regression tests.
"""

import hashlib

import numpy as np
import pytest

from repro.core import make_trainer
from repro.nn.network import MLP
from repro.obs import InMemoryRecorder
from repro.obs.probes import ProbeManager, default_probes

TRAINER_NAMES = ["standard", "dropout", "adaptive_dropout", "alsh", "mc", "topk"]

#: fixed-seed recipe shared by every run (matches the committed goldens).
SEED = 123
LAYER_SIZES = [64, 32, 32, 3]
EPOCHS = 2
BATCH_SIZE = 20


def weights_digest(net) -> str:
    """SHA-256 over the raw bytes of every parameter array, in order."""
    digest = hashlib.sha256()
    for layer in net.layers:
        digest.update(np.ascontiguousarray(layer.W).tobytes())
        digest.update(np.ascontiguousarray(layer.b).tobytes())
    return digest.hexdigest()


def run_trainer(name, dataset, recorder=None, probe_every=None):
    """One fixed-seed 2-epoch training run; returns (trainer, history)."""
    net = MLP(LAYER_SIZES, seed=SEED)
    trainer = make_trainer(name, net, seed=SEED, recorder=recorder)
    if probe_every is not None:
        trainer.attach_probes(
            ProbeManager(
                default_probes(),
                probe_every=probe_every,
                budget=None,
                seed=SEED,
            )
        )
    history = trainer.fit(
        dataset.x_train,
        dataset.y_train,
        epochs=EPOCHS,
        batch_size=BATCH_SIZE,
        x_val=dataset.x_val,
        y_val=dataset.y_val,
    )
    return trainer, history


@pytest.fixture(scope="session")
def traced_runs(tiny_dataset):
    """Per-method results of the null-recorder and traced runs."""
    out = {}
    for name in TRAINER_NAMES:
        trainer_null, _ = run_trainer(name, tiny_dataset)
        trainer, history = run_trainer(name, tiny_dataset, InMemoryRecorder())
        out[name] = {
            "null_digest": weights_digest(trainer_null.net),
            "traced_digest": weights_digest(trainer.net),
            "final_loss": float(history.losses()[-1]),
            "val_acc": float(history.val_accuracies()[-1]),
            "test_acc": float(
                trainer.evaluate(tiny_dataset.x_test, tiny_dataset.y_test)
            ),
            "snapshot": trainer.obs.snapshot(),
        }
    return out


@pytest.fixture(scope="session")
def probed_runs(tiny_dataset):
    """Per-method results of traced runs with quality probes attached.

    Kept separate from ``traced_runs`` so the golden-trace counters stay
    probe-free; the ``probe.*`` counters and series live here.
    """
    out = {}
    for name in TRAINER_NAMES:
        trainer, history = run_trainer(
            name, tiny_dataset, InMemoryRecorder(), probe_every=3
        )
        out[name] = {
            "digest": weights_digest(trainer.net),
            "final_loss": float(history.losses()[-1]),
            "snapshot": trainer.obs.snapshot(),
        }
    return out
