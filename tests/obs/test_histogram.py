"""Unit and property tests for the bounded log-bucket histogram.

The histogram is the primitive that replaces raw latency lists on the
serving path, so the two guarantees the rest of the repo leans on are
proven here property-style:

* merging sharded histograms is *bucket-exact* — recording a stream
  into N shards and merging equals recording the concatenated stream
  into one histogram, bucket for bucket;
* every quantile estimate lands in the same bucket as the true order
  statistic, i.e. within one bucket width (a factor of ``growth``) of
  ``np.percentile`` on the raw samples.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.histogram import (
    DEFAULT_BUCKETS,
    DEFAULT_GROWTH,
    DEFAULT_LO,
    Histogram,
    merge_histogram_snapshots,
)

# Positive samples spanning the default layout (1µs .. ~4200s) plus a
# touch of underflow/overflow so the edge buckets get exercised.
sample_values = st.floats(
    min_value=1e-8, max_value=1e5, allow_nan=False, allow_infinity=False
)


class TestLayout:
    def test_validation(self):
        with pytest.raises(ValueError):
            Histogram(lo=0.0)
        with pytest.raises(ValueError):
            Histogram(growth=1.0)
        with pytest.raises(ValueError):
            Histogram(n_buckets=0)

    def test_memory_is_o_buckets(self):
        hist = Histogram()
        for i in range(10_000):
            hist.record(1e-4 * (1 + i % 7))
        assert hist.count == 10_000
        assert len(hist.counts) == DEFAULT_BUCKETS + 2  # fixed, not O(n)

    def test_underflow_and_overflow_buckets(self):
        hist = Histogram(lo=1e-3, growth=2.0, n_buckets=4)  # top edge 16e-3
        hist.record(1e-9)
        hist.record(-5.0)
        hist.record(100.0)
        assert hist.counts[0] == 2
        assert hist.counts[hist.n_buckets + 1] == 1
        assert hist.count == 3

    def test_edge_value_belongs_to_lower_bucket(self):
        hist = Histogram(lo=1e-3, growth=2.0, n_buckets=8)
        # 2e-3 is the exact upper edge of bucket 1.
        assert hist.bucket_index(2e-3) == 1
        assert hist.bucket_index(2e-3 + 1e-9) == 2

    def test_default_layout_covers_microseconds_to_an_hour(self):
        hist = Histogram()
        for value in (2e-6, 1e-3, 0.25, 30.0, 3600.0):
            assert 1 <= hist.bucket_index(value) <= hist.n_buckets


class TestRecordAndQuantile:
    def test_empty_histogram_has_no_stats(self):
        hist = Histogram()
        assert hist.count == 0
        assert hist.mean is None
        assert hist.quantile(0.5) is None

    def test_quantile_range_validated(self):
        with pytest.raises(ValueError):
            Histogram().quantile(1.5)

    def test_single_sample_quantiles_are_the_sample(self):
        hist = Histogram()
        hist.record(0.010)
        # min/max clamping makes a single sample exact at any quantile.
        assert hist.quantile(0.0) == pytest.approx(0.010)
        assert hist.quantile(0.5) == pytest.approx(0.010)
        assert hist.quantile(1.0) == pytest.approx(0.010)

    def test_mean_sum_min_max_are_exact(self):
        hist = Histogram()
        hist.record_many([0.001, 0.002, 0.009])
        assert hist.sum == pytest.approx(0.012)
        assert hist.mean == pytest.approx(0.004)
        assert hist.min == pytest.approx(0.001)
        assert hist.max == pytest.approx(0.009)


class TestSnapshotRoundtrip:
    def test_roundtrip_preserves_everything(self):
        hist = Histogram()
        hist.record_many([1e-5, 3e-3, 0.4, 7.0])
        back = Histogram.from_snapshot(hist.snapshot())
        assert back.counts == hist.counts
        assert back.count == hist.count
        assert back.sum == pytest.approx(hist.sum)
        assert back.min == hist.min and back.max == hist.max
        assert back.quantile(0.9) == hist.quantile(0.9)

    def test_snapshot_is_sparse_and_json_safe(self):
        import json

        hist = Histogram()
        hist.record(0.01)
        payload = hist.snapshot()
        assert len(payload["counts"]) == 1  # only occupied buckets stored
        json.dumps(payload)  # must not raise


class TestMerge:
    def test_layout_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Histogram().merge(Histogram(lo=1e-3))

    def test_merge_snapshots_skips_none_parts(self):
        hist = Histogram()
        hist.record(0.5)
        merged = merge_histogram_snapshots(
            [None, {"h": hist.snapshot()}, None, {"h": hist.snapshot()}]
        )
        assert merged["h"]["count"] == 2

    @settings(max_examples=30, deadline=None)
    @given(
        values=st.lists(sample_values, min_size=1, max_size=200),
        n_shards=st.integers(1, 5),
    )
    def test_sharded_merge_is_bucket_exact(self, values, n_shards):
        """Shard-and-merge == one histogram of the concatenated stream."""
        whole = Histogram()
        whole.record_many(values)
        shards = [Histogram() for _ in range(n_shards)]
        for i, value in enumerate(values):
            shards[i % n_shards].record(value)
        merged = Histogram()
        for shard in shards:
            merged.merge(shard)
        assert merged.counts == whole.counts
        assert merged.count == whole.count
        assert merged.sum == pytest.approx(whole.sum)
        assert merged.min == whole.min and merged.max == whole.max

    @settings(max_examples=30, deadline=None)
    @given(
        values=st.lists(sample_values, min_size=1, max_size=200),
        n_shards=st.integers(1, 5),
    )
    def test_merge_via_snapshots_matches_direct_merge(self, values, n_shards):
        shards = [Histogram() for _ in range(n_shards)]
        for i, value in enumerate(values):
            shards[i % n_shards].record(value)
        via_snaps = merge_histogram_snapshots(
            [{"h": s.snapshot()} for s in shards]
        )["h"]
        whole = Histogram()
        whole.record_many(values)
        assert via_snaps["counts"] == whole.snapshot()["counts"]
        assert via_snaps["count"] == whole.count


class TestQuantileErrorBound:
    @settings(max_examples=40, deadline=None)
    @given(
        values=st.lists(
            st.floats(min_value=1e-5, max_value=1e3,
                      allow_nan=False, allow_infinity=False),
            min_size=1,
            max_size=300,
        ),
        q=st.sampled_from([0.0, 0.1, 0.5, 0.9, 0.99, 1.0]),
    )
    def test_quantile_within_one_bucket_width_of_numpy(self, values, q):
        """The estimate shares a bucket with the true order statistic."""
        hist = Histogram()
        hist.record_many(values)
        estimate = hist.quantile(q)
        # Nearest-rank order statistic, matching the histogram's walk.
        rank = max(1, math.ceil(q * len(values)))
        truth = float(np.sort(np.asarray(values))[rank - 1])
        assert estimate <= truth * DEFAULT_GROWTH * (1 + 1e-9)
        assert estimate >= truth / DEFAULT_GROWTH * (1 - 1e-9)

    def test_p99_close_to_numpy_on_a_realistic_latency_mix(self):
        rng = np.random.default_rng(0)
        values = rng.lognormal(mean=-6.0, sigma=0.8, size=20_000)  # ~ms scale
        hist = Histogram()
        hist.record_many(values)
        for q in (0.5, 0.9, 0.99):
            truth = float(np.quantile(values, q, method="inverted_cdf"))
            assert hist.quantile(q) == pytest.approx(
                truth, rel=DEFAULT_GROWTH - 1.0
            )

    def test_quantiles_survive_merge_with_same_bound(self):
        rng = np.random.default_rng(1)
        values = rng.lognormal(mean=-6.0, sigma=1.0, size=5_000)
        shards = [Histogram() for _ in range(4)]
        for i, value in enumerate(values):
            shards[i % 4].record(value)
        merged = Histogram()
        for shard in shards:
            merged.merge(shard)
        truth = float(np.quantile(values, 0.99, method="inverted_cdf"))
        assert merged.quantile(0.99) == pytest.approx(
            truth, rel=DEFAULT_GROWTH - 1.0
        )


class TestDefaults:
    def test_default_constants_exported(self):
        assert DEFAULT_LO == pytest.approx(1e-6)
        assert DEFAULT_GROWTH == pytest.approx(2.0 ** 0.2)
        assert DEFAULT_BUCKETS == 160
        # the documented coverage claim: 1µs up past an hour
        top = DEFAULT_LO * DEFAULT_GROWTH ** DEFAULT_BUCKETS
        assert top > 3600.0
