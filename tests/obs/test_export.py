"""Prometheus exposition + metrics/health endpoint tests.

``parse_prometheus`` doubles as the validity oracle: every rendering
test round-trips its output through the parser, and the CI metrics-smoke
job runs the same parser over a live scrape.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs import InMemoryRecorder
from repro.obs.export import (
    MetricsServer,
    parse_prometheus,
    render_prometheus,
    sanitize_metric_name,
    write_exposition,
)
from repro.obs.histogram import Histogram


def _snapshot():
    rec = InMemoryRecorder()
    rec.add("serve.requests", 42)
    rec.gauge("serve.queue_depth", 3.0)
    rec.add_time("fit", 1.5)
    rec.series("serve.head.recall", 0, 0.9)
    rec.series("serve.head.recall", 1, 0.95)
    rec.histogram("serve.latency_s", 0.002)
    rec.histogram("serve.latency_s", 0.004)
    return rec.snapshot()


def _get(url):
    with urllib.request.urlopen(url, timeout=5.0) as resp:
        return resp.status, resp.read().decode("utf-8")


class TestSanitize:
    def test_dots_become_underscores_under_prefix(self):
        assert sanitize_metric_name("serve.latency_s") == "repro_serve_latency_s"

    def test_custom_prefix(self):
        assert sanitize_metric_name("a.b", prefix="x_") == "x_a_b"


class TestRenderPrometheus:
    def test_all_sections_render_and_parse(self):
        text = render_prometheus(_snapshot())
        samples = parse_prometheus(text)
        assert samples["repro_serve_requests_total"] == [("", 42.0)]
        assert samples["repro_serve_queue_depth"] == [("", 3.0)]
        assert samples["repro_fit_seconds_total"] == [("", 1.5)]
        assert samples["repro_fit_calls_total"] == [("", 1.0)]
        assert samples["repro_serve_head_recall_last"] == [("", 0.95)]
        assert samples["repro_serve_latency_s_count"] == [("", 2.0)]

    def test_histogram_family_is_cumulative_and_ends_at_inf(self):
        text = render_prometheus(_snapshot())
        buckets = parse_prometheus(text)["repro_serve_latency_s_bucket"]
        counts = [value for _, value in buckets]
        assert counts == sorted(counts)  # cumulative
        assert buckets[-1][0] == '{le="+Inf"}'
        assert buckets[-1][1] == 2.0
        # exactly one +Inf line per family
        assert sum('le="+Inf"' in labels for labels, _ in buckets) == 1

    def test_empty_snapshot_renders_valid_text(self):
        assert parse_prometheus(render_prometheus(None)) == {}
        assert parse_prometheus(render_prometheus({})) == {}

    def test_parser_rejects_malformed_lines(self):
        with pytest.raises(ValueError):
            parse_prometheus("this is not a metric line\n")
        with pytest.raises(ValueError):
            parse_prometheus("metric_name not_a_number\n")
        with pytest.raises(ValueError):
            parse_prometheus('m{bad label!="x"} 1\n')


class TestWriteExposition:
    def test_atomic_write_leaves_no_tmp(self, tmp_path):
        path = tmp_path / "metrics" / "sweep.prom"
        write_exposition(path, _snapshot())
        assert path.exists()
        assert not path.with_name(path.name + ".tmp").exists()
        samples = parse_prometheus(path.read_text(encoding="utf-8"))
        assert samples["repro_serve_requests_total"] == [("", 42.0)]

    def test_rewrite_replaces_contents(self, tmp_path):
        path = tmp_path / "sweep.prom"
        write_exposition(path, _snapshot())
        write_exposition(path, {"counters": {"only.this": 1}})
        samples = parse_prometheus(path.read_text(encoding="utf-8"))
        assert set(samples) == {"repro_only_this_total"}


class TestMetricsServer:
    def test_metrics_endpoint_serves_parseable_exposition(self):
        with MetricsServer(_snapshot, port=0) as server:
            status, body = _get(server.url + "/metrics")
        assert status == 200
        samples = parse_prometheus(body)
        assert samples["repro_serve_requests_total"] == [("", 42.0)]

    def test_metrics_json_roundtrips_the_snapshot(self):
        snapshot = _snapshot()
        with MetricsServer(lambda: snapshot, port=0) as server:
            status, body = _get(server.url + "/metrics.json")
        assert status == 200
        assert json.loads(body) == json.loads(json.dumps(snapshot))

    def test_healthz_always_200(self):
        with MetricsServer(dict, port=0) as server:
            status, body = _get(server.url + "/healthz")
        assert status == 200 and body == "ok\n"

    def test_readyz_reflects_ready_fn(self):
        ready = {"ok": True}
        with MetricsServer(
            dict,
            port=0,
            ready_fn=lambda: (ready["ok"], "ok" if ready["ok"] else "draining"),
        ) as server:
            status, body = _get(server.url + "/readyz")
            assert status == 200 and body == "ok\n"
            ready["ok"] = False
            with pytest.raises(urllib.error.HTTPError) as exc:
                _get(server.url + "/readyz")
            assert exc.value.code == 503
            assert exc.value.read().decode("utf-8") == "draining\n"

    def test_unknown_path_is_404(self):
        with MetricsServer(dict, port=0) as server:
            with pytest.raises(urllib.error.HTTPError) as exc:
                _get(server.url + "/nope")
            assert exc.value.code == 404

    def test_snapshot_fn_called_per_scrape(self):
        rec = InMemoryRecorder()
        with MetricsServer(rec.snapshot, port=0) as server:
            _, before = _get(server.url + "/metrics")
            rec.add("live.counter", 7)
            _, after = _get(server.url + "/metrics")
        assert "repro_live_counter_total" not in parse_prometheus(before)
        assert parse_prometheus(after)["repro_live_counter_total"] == [("", 7.0)]

    def test_live_histogram_scrape(self):
        rec = InMemoryRecorder()
        hist = rec.get_histogram("serve.latency_s")
        assert isinstance(hist, Histogram)
        hist.record(0.003)
        with MetricsServer(rec.snapshot, port=0) as server:
            _, body = _get(server.url + "/metrics")
        assert parse_prometheus(body)["repro_serve_latency_s_count"] == [
            ("", 1.0)
        ]
