"""JSONL trace sink, executor-sink compatibility and report rendering."""

import json

import pytest

from repro.harness.executor import (
    JsonlSink,
    aggregate_traces,
    run_experiment_traced,
)
from repro.harness.config import ExperimentConfig
from repro.obs import (
    AGGREGATE_KIND,
    InMemoryRecorder,
    derived_metrics,
    read_traces,
    render_counters,
    render_spans,
    render_trace,
    trace_record,
    write_trace,
)
from repro.obs.counters import (
    FLOPS_ACTUAL,
    FLOPS_DENSE,
    LSH_CANDIDATES,
    LSH_QUERIES,
)


def _snapshot(**counters):
    return {"counters": counters, "gauges": {}, "timings": {}, "spans": {}}


class TestSink:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        record = trace_record(_snapshot(c=1), label="run-a", key="k1", extra=42)
        write_trace(path, record)
        loaded = read_traces(path)
        assert loaded == [record]
        assert loaded[0]["extra"] == 42

    def test_kind_filter(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        write_trace(path, trace_record(_snapshot(), label="t"))
        write_trace(path, trace_record(_snapshot(), kind=AGGREGATE_KIND))
        assert len(read_traces(path)) == 2
        assert len(read_traces(path, kind=AGGREGATE_KIND)) == 1

    def test_skips_executor_outcomes_and_truncated_lines(self, tmp_path):
        path = tmp_path / "mixed.jsonl"
        sink = JsonlSink(path)
        sink.append({"key": "task-1", "status": "ok", "result": None})
        write_trace(path, trace_record(_snapshot(c=3), label="t"))
        with open(path, "a", encoding="utf-8") as f:
            f.write('{"kind": "trace", "snaps')  # crash mid-write
        traces = read_traces(path)
        assert len(traces) == 1
        assert traces[0]["snapshot"]["counters"] == {"c": 3}
        # and the executor side ignores the trace line symmetrically:
        assert set(sink.completed()) == {"task-1"}

    def test_missing_file_is_empty(self, tmp_path):
        assert read_traces(tmp_path / "absent.jsonl") == []


class TestDerivedMetrics:
    def test_flop_and_lsh_ratios(self):
        snap = _snapshot(
            **{
                FLOPS_DENSE: 100,
                FLOPS_ACTUAL: 25,
                LSH_QUERIES: 10,
                LSH_CANDIDATES: 30,
            }
        )
        derived = derived_metrics(snap)
        assert derived["flops.skipped"] == 75
        assert derived["flops.skipped_frac"] == 0.75
        assert derived["lsh.candidates_per_query"] == 3.0

    def test_zero_denominators_are_omitted(self):
        assert derived_metrics(_snapshot()) == {}


class TestRendering:
    def test_render_counters_lists_names_and_descriptions(self):
        text = render_counters(_snapshot(**{FLOPS_DENSE: 10, FLOPS_ACTUAL: 4}))
        assert FLOPS_DENSE in text
        assert "flops.skipped" in text
        assert "GEMM FLOPs" in text

    def test_render_empty(self):
        assert "no counters" in render_counters(_snapshot())
        assert "no spans" in render_spans(_snapshot())

    def test_render_trace_includes_title_and_spans(self):
        rec = InMemoryRecorder()
        with rec.span("fit"):
            with rec.span("epoch"):
                pass
        rec.add(FLOPS_DENSE, 8)
        text = render_trace(rec.snapshot(), title="demo")
        assert text.startswith("demo\n====")
        assert "epoch" in text and FLOPS_DENSE in text


class TestExecutorIntegration:
    def test_traced_task_attaches_and_aggregates(self, tmp_path):
        cfg = ExperimentConfig(
            method="standard",
            dataset="mnist",
            data_scale=0.004,
            hidden_layers=1,
            hidden_width=16,
            epochs=1,
            batch_size=20,
            seed=0,
        )
        result = run_experiment_traced(cfg, None)
        assert result.trace is not None
        assert result.trace["counters"][FLOPS_DENSE] > 0

        class Outcome:
            def __init__(self, result):
                self.result = result
                self.ok = result is not None

        merged = aggregate_traces([Outcome(result), Outcome(result)])
        assert (
            merged["counters"][FLOPS_DENSE]
            == 2 * result.trace["counters"][FLOPS_DENSE]
        )
        assert aggregate_traces([]) is None

    def test_result_roundtrips_trace_through_json(self):
        from repro.harness.results import result_from_dict, result_to_dict

        cfg = ExperimentConfig(
            method="standard",
            dataset="mnist",
            data_scale=0.004,
            hidden_layers=1,
            hidden_width=16,
            epochs=1,
            batch_size=20,
            seed=0,
        )
        result = run_experiment_traced(cfg, None)
        payload = json.loads(json.dumps(result_to_dict(result)))
        restored = result_from_dict(payload)
        assert restored.trace == result.trace
