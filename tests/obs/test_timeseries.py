"""Unit tests for repro.obs.timeseries and the recorder's series API."""

import json

import pytest

from repro.obs import (
    InMemoryRecorder,
    NullRecorder,
    SeriesStore,
    is_catalogued_series,
    layer_series,
    merge_series,
    merge_snapshots,
    series_points,
    split_layer_series,
)
from repro.obs.timeseries import (
    SERIES_CATALOG,
    SERIES_EPOCH_LOSS,
    SERIES_FWD_REL_ERROR,
    SERIES_PREFIXES,
)


class TestNaming:
    def test_layer_series_round_trip(self):
        name = layer_series(SERIES_FWD_REL_ERROR, 3)
        assert name == "probe.forward.rel_error.l3"
        assert split_layer_series(name) == (SERIES_FWD_REL_ERROR, 3)

    def test_split_rejects_non_layer_names(self):
        assert split_layer_series(SERIES_EPOCH_LOSS) is None
        assert split_layer_series("no.layer.suffix") is None
        assert split_layer_series("trailing.lx") is None

    def test_catalogue_membership(self):
        assert is_catalogued_series(SERIES_EPOCH_LOSS)
        assert is_catalogued_series(layer_series(SERIES_FWD_REL_ERROR, 2))
        assert not is_catalogued_series("made.up.series")
        assert not is_catalogued_series("made.up.family.l2")

    def test_catalogues_do_not_overlap(self):
        assert not set(SERIES_CATALOG) & set(SERIES_PREFIXES)


class TestSeriesStore:
    def test_append_and_snapshot_are_json_safe(self):
        store = SeriesStore()
        store.append("a", 0, 1.5)
        store.append("a", 1, 2.5)
        snap = store.snapshot()
        assert snap == {"a": [[0, 1.5], [1, 2.5]]}
        json.dumps(snap)  # must not raise

    def test_load_replaces_wholesale(self):
        store = SeriesStore()
        store.append("old", 0, 1.0)
        store.load({"new": [[3, 4.0]]})
        assert store.names() == ["new"]
        assert store.points("new") == [[3, 4.0]]

    def test_len_counts_series_not_points(self):
        store = SeriesStore()
        store.append("a", 0, 1.0)
        store.append("a", 1, 2.0)
        store.append("b", 0, 3.0)
        assert len(store) == 2


class TestMergeSeries:
    def test_concatenates_and_sorts_by_index(self):
        merged = merge_series(
            [{"s": [[2, 20.0], [4, 40.0]]}, {"s": [[1, 10.0], [3, 30.0]]}]
        )
        assert merged == {"s": [[1, 10.0], [2, 20.0], [3, 30.0], [4, 40.0]]}

    def test_stable_on_equal_indices(self):
        merged = merge_series([{"s": [[1, 1.0]]}, {"s": [[1, 2.0]]}])
        assert merged == {"s": [[1, 1.0], [1, 2.0]]}

    def test_skips_none_and_empty_parts(self):
        assert merge_series([None, {}, {"s": [[0, 1.0]]}]) == {"s": [[0, 1.0]]}


class TestSeriesPoints:
    def test_reads_full_snapshot(self):
        snap = {"series": {"s": [[0, 1.0], [1, 2.0]]}}
        assert series_points(snap, "s") == ([0, 1], [1.0, 2.0])

    def test_reads_bare_section(self):
        assert series_points({"s": [[0, 1.0]]}, "s") == ([0], [1.0])

    def test_missing_series_and_missing_section(self):
        assert series_points({"series": {}}, "s") == ([], [])
        assert series_points({"counters": {}}, "s") == ([], [])


class TestRecorderSeries:
    def test_null_recorder_series_is_noop(self):
        rec = NullRecorder()
        rec.series("s", 0, 1.0)
        assert rec.snapshot()["series"] == {}

    def test_inmemory_records_and_snapshots(self):
        rec = InMemoryRecorder()
        rec.series("s", 0, 1.5)
        rec.series("s", 1, 2.5)
        assert rec.snapshot()["series"] == {"s": [[0, 1.5], [1, 2.5]]}

    def test_series_snapshot_and_load_round_trip(self):
        rec = InMemoryRecorder()
        rec.series("s", 0, 1.0)
        payload = rec.series_snapshot()
        fresh = InMemoryRecorder()
        fresh.load_series(payload)
        assert fresh.snapshot()["series"] == rec.snapshot()["series"]

    def test_merge_snapshots_merges_series(self):
        a, b = InMemoryRecorder(), InMemoryRecorder()
        a.series("s", 1, 10.0)
        b.series("s", 0, 5.0)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["series"] == {"s": [[0, 5.0], [1, 10.0]]}
