"""Request tracing: id minting, event buffers, stores and timelines."""

import itertools
import threading

import pytest

from repro.cli import main
from repro.obs import RequestTracer
from repro.obs.sink import read_traces, scan_jsonl, trace_record, write_trace
from repro.obs.tracectx import (
    NULL_TRACER,
    REQUEST_TRACE_KIND,
    read_trace_events,
    reconstruct_request,
    render_request_timeline,
)


class TestMinting:
    def test_ids_are_sequential_and_prefixed(self):
        tracer = RequestTracer()
        assert tracer.mint() == "r000001"
        assert tracer.mint() == "r000002"
        assert tracer.mint_batch() == "b000001"

    def test_custom_prefix_for_multiprocess(self):
        tracer = RequestTracer(id_prefix="w3-")
        assert tracer.mint() == "w3-000001"

    def test_threaded_minting_never_collides(self):
        tracer = RequestTracer()
        minted = []
        def worker():
            minted.extend(tracer.mint() for _ in range(500))
        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(minted) == 4000
        assert len(set(minted)) == 4000


class TestEventBuffer:
    def test_events_buffer_without_a_sink(self):
        tracer = RequestTracer(clock=itertools.count().__next__)
        rid = tracer.mint()
        tracer.event(rid, "enqueued")
        tracer.event(rid, "completed", batch="b000001")
        assert [e["event"] for e in tracer.events] == ["enqueued", "completed"]
        assert tracer.events[1]["batch"] == "b000001"

    def test_sinkless_buffer_is_bounded(self):
        tracer = RequestTracer(max_buffer=100)
        for i in range(301):
            tracer.event(f"r{i:06d}", "enqueued", t=float(i))
        # the oldest half is dropped whenever the bound is exceeded
        assert len(tracer.events) <= 101
        assert tracer.events[-1]["request"] == "r000300"

    def test_extra_fields_ride_the_event(self):
        tracer = RequestTracer()
        tracer.event(None, "forward", batch="b1", seconds=0.25)
        assert tracer.events[0]["seconds"] == 0.25
        assert tracer.events[0]["request"] is None

    def test_null_tracer_is_inert(self):
        assert NULL_TRACER.mint() is None
        assert NULL_TRACER.mint_batch() is None
        NULL_TRACER.event("r1", "enqueued")
        NULL_TRACER.flush()
        assert NULL_TRACER.events == []


class TestSinkFlush:
    def test_flush_writes_request_trace_records(self, tmp_path):
        store = tmp_path / "trace.jsonl"
        tracer = RequestTracer(sink=store)
        rid = tracer.mint()
        tracer.event(rid, "enqueued", t=0.0)
        tracer.event(rid, "completed", t=1.0)
        tracer.flush()
        records, corrupt = scan_jsonl(store)
        assert corrupt == 0
        assert records[0]["kind"] == REQUEST_TRACE_KIND
        assert len(records[0]["events"]) == 2

    def test_auto_flush_at_flush_every(self, tmp_path):
        store = tmp_path / "trace.jsonl"
        tracer = RequestTracer(sink=store, flush_every=10)
        for i in range(25):
            tracer.event(f"r{i:06d}", "enqueued", t=float(i))
        records, _ = scan_jsonl(store)
        assert sum(len(r["events"]) for r in records) >= 20
        tracer.close()
        records, _ = scan_jsonl(store)
        assert sum(len(r["events"]) for r in records) == 25

    def test_trace_records_invisible_to_snapshot_readers(self, tmp_path):
        """read_traces skips request_trace records (no snapshot key)."""
        store = tmp_path / "trace.jsonl"
        tracer = RequestTracer(sink=store)
        tracer.event("r000001", "enqueued", t=0.0)
        tracer.flush()
        write_trace(store, trace_record({"counters": {}}, label="run"))
        assert len(read_traces(store)) == 1


def _events():
    return [
        {"request": "r000001", "event": "enqueued", "t": 1.0},
        {"request": "r000002", "event": "enqueued", "t": 1.1},
        {"request": "r000001", "event": "dispatched", "t": 2.0,
         "batch": "b000001"},
        {"request": "r000002", "event": "dispatched", "t": 2.0,
         "batch": "b000001"},
        {"request": None, "event": "forward", "t": 2.5, "batch": "b000001",
         "seconds": 0.5},
        {"request": "r000001", "event": "completed", "t": 3.0,
         "batch": "b000001"},
        {"request": "r000003", "event": "enqueued", "t": 9.0},
    ]


class TestReconstruction:
    def test_read_trace_events_flattens_records(self):
        records = [
            {"kind": REQUEST_TRACE_KIND, "events": _events()[:3]},
            {"kind": "snapshot", "snapshot": {}},
            {"kind": REQUEST_TRACE_KIND, "events": _events()[3:]},
        ]
        assert read_trace_events(records) == _events()

    def test_timeline_includes_batch_work_and_siblings(self):
        timeline = reconstruct_request(_events(), "r000001")
        assert [e["event"] for e in timeline["events"]] == [
            "enqueued", "dispatched", "completed"
        ]
        assert timeline["batch"] == "b000001"
        assert [e["event"] for e in timeline["batch_events"]] == ["forward"]
        assert timeline["siblings"] == ["r000002"]

    def test_unknown_request_raises_keyerror(self):
        with pytest.raises(KeyError):
            reconstruct_request(_events(), "r999999")

    def test_render_timeline_mentions_every_hop(self):
        text = render_request_timeline(reconstruct_request(_events(), "r000001"))
        assert "request r000001" in text
        for token in ("enqueued", "dispatched", "completed",
                      "batch b000001", "forward"):
            assert token in text
        assert "1 sibling" in text


class TestTraceReportCli:
    def _store(self, tmp_path):
        store = tmp_path / "trace.jsonl"
        tracer = RequestTracer(sink=store)
        for event in _events():
            tracer.event(
                event["request"], event["event"], batch=event.get("batch"),
                t=event["t"],
                **{k: v for k, v in event.items()
                   if k not in ("request", "event", "t", "batch")},
            )
        tracer.flush()
        return store

    def test_request_timeline_printed(self, tmp_path, capsys):
        code = main(["trace-report", "--from-store",
                     str(self._store(tmp_path)), "--request", "r000001"])
        assert code == 0
        out = capsys.readouterr().out
        assert "request r000001" in out
        assert "completed" in out

    def test_unknown_request_exits_two(self, tmp_path, capsys):
        code = main(["trace-report", "--from-store",
                     str(self._store(tmp_path)), "--request", "r999999"])
        assert code == 2
        assert "not found" in capsys.readouterr().err.lower()

    def test_request_without_store_exits_two(self, capsys):
        code = main(["trace-report", "--request", "r000001"])
        assert code == 2
