"""Finite-difference verification of every hand-written gradient.

The repo deliberately has no autograd (the sampling methods work *inside*
the matrix products), so the exact backward passes are the ground truth
every approximation is compared against — they must be provably right.
These tests check, by central differences in float64:

* ``MLP.backward`` for every hidden activation in ``repro.nn.activations``
  (ReLU's kink is measure-zero under the random continuous inputs used);
* every loss gradient in ``repro.nn.losses``, including the fused
  log-softmax + NLL logit gradient the trainers consume;
* the conv substrate: ``Conv2D`` gradients w.r.t. kernels, bias and input.
"""

import numpy as np
import pytest

from repro.nn.activations import LogSoftmax
from repro.nn.conv import Conv2D
from repro.nn.losses import CrossEntropyLoss, MSELoss, NLLLoss
from repro.nn.network import MLP

EPS = 1e-6
TOL = 1e-5

# Hidden activations with a usable element-wise derivative (log_softmax is
# output-only by design: its Jacobian is not diagonal).
HIDDEN_ACTIVATIONS = [
    "relu", "leaky_relu", "sigmoid", "tanh", "identity", "softplus",
]


def numerical_gradient(f, param):
    """Central-difference gradient of scalar ``f()`` w.r.t. ``param``.

    ``param`` is perturbed in place element by element (the nets here are
    tiny, so the O(size) function evaluations stay cheap).
    """
    grad = np.zeros_like(param)
    flat = param.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + EPS
        hi = f()
        flat[i] = original - EPS
        lo = f()
        flat[i] = original
        gflat[i] = (hi - lo) / (2 * EPS)
    return grad


def relative_error(analytic, numeric):
    scale = max(np.abs(analytic).max(), np.abs(numeric).max(), 1e-8)
    return np.abs(analytic - numeric).max() / scale


class TestMLPBackward:
    @pytest.mark.parametrize("activation", HIDDEN_ACTIVATIONS)
    def test_weight_and_bias_gradients(self, activation):
        rng = np.random.default_rng(42)
        net = MLP([6, 5, 4, 3], hidden_activation=activation, seed=0)
        x = rng.normal(size=(7, 6))
        y = rng.integers(0, 3, size=7)

        grads = net.backward(net.forward(x), y)
        for layer, (g_w, g_b) in zip(net.layers, grads):
            num_w = numerical_gradient(lambda: net.loss(x, y), layer.W)
            num_b = numerical_gradient(lambda: net.loss(x, y), layer.b)
            assert relative_error(g_w, num_w) < TOL, activation
            assert relative_error(g_b, num_b) < TOL, activation

    def test_deep_relu_network(self):
        """Depth compounds any systematic gradient error; check at k=4."""
        rng = np.random.default_rng(3)
        net = MLP([5, 4, 4, 4, 4, 3], seed=1)
        x = rng.normal(size=(5, 5))
        y = rng.integers(0, 3, size=5)
        grads = net.backward(net.forward(x), y)
        for layer, (g_w, _) in zip(net.layers, grads):
            num_w = numerical_gradient(lambda: net.loss(x, y), layer.W)
            assert relative_error(g_w, num_w) < TOL


class TestLossGradients:
    def _check(self, loss, output, target):
        analytic = loss.gradient(output, target)
        numeric = numerical_gradient(lambda: loss.value(output, target), output)
        assert relative_error(analytic, numeric) < TOL

    def test_nll(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(6, 4))
        logp = LogSoftmax().forward(logits)
        self._check(NLLLoss(), logp, rng.integers(0, 4, size=6))

    def test_cross_entropy(self):
        rng = np.random.default_rng(1)
        self._check(
            CrossEntropyLoss(),
            rng.normal(size=(6, 4)),
            rng.integers(0, 4, size=6),
        )

    def test_mse(self):
        rng = np.random.default_rng(2)
        self._check(
            MSELoss(), rng.normal(size=(5, 3)), rng.normal(size=(5, 3))
        )

    def test_fused_logit_gradient(self):
        """The gradient the trainers actually consume: d NLL/d logits."""
        rng = np.random.default_rng(4)
        logits = rng.normal(size=(6, 4))
        y = rng.integers(0, 4, size=6)
        analytic = NLLLoss.fused_logit_gradient(logits, y)
        numeric = numerical_gradient(
            lambda: NLLLoss().value(LogSoftmax().forward(logits), y), logits
        )
        assert relative_error(analytic, numeric) < TOL


class TestConvGradients:
    """Conv2D under a fixed linear readout: loss = sum(out * R)."""

    def setup_method(self):
        rng = np.random.default_rng(7)
        self.conv = Conv2D(2, 3, field=3, stride=1, pad=1, rng=rng)
        self.x = rng.normal(size=(2, 2, 6, 6))
        self.readout = rng.normal(size=(2, 3, 6, 6))

    def _loss(self):
        return float((self.conv.forward(self.x) * self.readout).sum())

    def test_kernel_gradients(self):
        self._loss()
        self.conv.backward(self.readout)
        analytic = self.conv.grad_kernels.copy()
        numeric = numerical_gradient(self._loss, self.conv.kernels)
        assert relative_error(analytic, numeric) < TOL

    def test_bias_gradients(self):
        self._loss()
        self.conv.backward(self.readout)
        analytic = self.conv.grad_bias.copy()
        numeric = numerical_gradient(self._loss, self.conv.bias)
        assert relative_error(analytic, numeric) < TOL

    def test_input_gradients(self):
        self._loss()
        analytic = self.conv.backward(self.readout)
        numeric = numerical_gradient(self._loss, self.x)
        assert relative_error(analytic, numeric) < TOL

    def test_strided_no_pad_kernels(self):
        rng = np.random.default_rng(9)
        conv = Conv2D(1, 2, field=2, stride=2, pad=0, rng=rng)
        x = rng.normal(size=(1, 1, 6, 6))
        readout = rng.normal(size=(1, 2, 3, 3))

        def loss():
            return float((conv.forward(x) * readout).sum())

        loss()
        conv.backward(readout)
        analytic = conv.grad_kernels.copy()
        numeric = numerical_gradient(loss, conv.kernels)
        assert relative_error(analytic, numeric) < TOL
