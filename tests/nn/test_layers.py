"""Unit and property tests for repro.nn.layers.DenseLayer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.layers import DenseLayer


@pytest.fixture
def layer(rng):
    return DenseLayer(6, 4, rng)


class TestConstruction:
    def test_shapes(self, layer):
        assert layer.W.shape == (6, 4)
        assert layer.b.shape == (4,)

    def test_bias_starts_zero(self, layer):
        assert not layer.b.any()

    @pytest.mark.parametrize("n_in,n_out", [(0, 3), (3, 0), (-1, 2)])
    def test_invalid_dims(self, n_in, n_out, rng):
        with pytest.raises(ValueError):
            DenseLayer(n_in, n_out, rng)

    def test_num_params(self, layer):
        assert layer.num_params() == 6 * 4 + 4


class TestForward:
    def test_matches_manual(self, layer, rng):
        x = rng.normal(size=(3, 6))
        np.testing.assert_allclose(layer.forward(x), x @ layer.W + layer.b)

    def test_forward_columns_matches_slice(self, layer, rng):
        x = rng.normal(size=(2, 6))
        cols = np.array([0, 2])
        full = layer.forward(x)
        np.testing.assert_allclose(
            layer.forward_columns(x, cols), full[:, cols], atol=1e-12
        )

    def test_forward_rows_all_rows_is_exact(self, layer, rng):
        x = rng.normal(size=(2, 6))
        rows = np.arange(6)
        np.testing.assert_allclose(
            layer.forward_rows(x, rows), layer.forward(x), atol=1e-12
        )

    def test_forward_rows_with_scaling(self, layer, rng):
        x = rng.normal(size=(1, 6))
        rows = np.array([1, 3])
        scale = np.array([2.0, 0.5])
        expected = (x[:, rows] * scale) @ layer.W[rows, :] + layer.b
        np.testing.assert_allclose(
            layer.forward_rows(x, rows, scale), expected, atol=1e-12
        )


class TestBackward:
    def test_weight_gradients_match_finite_difference(self, rng):
        layer = DenseLayer(4, 3, rng)
        x = rng.normal(size=(2, 4))
        delta = rng.normal(size=(2, 3))
        g_w, g_b = layer.weight_gradients(x, delta)
        # d/dW of sum(delta * (xW + b)) is x^T delta.
        eps = 1e-6
        for i in range(4):
            for j in range(3):
                w_plus = layer.W.copy()
                w_plus[i, j] += eps
                w_minus = layer.W.copy()
                w_minus[i, j] -= eps
                f_plus = float((delta * (x @ w_plus + layer.b)).sum())
                f_minus = float((delta * (x @ w_minus + layer.b)).sum())
                assert g_w[i, j] == pytest.approx(
                    (f_plus - f_minus) / (2 * eps), abs=1e-5
                )
        np.testing.assert_allclose(g_b, delta.sum(axis=0))

    def test_backprop_delta(self, layer, rng):
        delta = rng.normal(size=(2, 4))
        np.testing.assert_allclose(layer.backprop_delta(delta), delta @ layer.W.T)

    def test_column_restricted_consistency(self, layer, rng):
        """Sparse-column products must equal the dense ones restricted."""
        x = rng.normal(size=(2, 6))
        delta = rng.normal(size=(2, 4))
        cols = np.array([1, 3])
        g_full, _ = layer.weight_gradients(x, delta)
        g_cols, g_b_cols = layer.weight_gradients_columns(x, delta[:, cols], cols)
        np.testing.assert_allclose(g_cols, g_full[:, cols], atol=1e-12)
        np.testing.assert_allclose(g_b_cols, delta[:, cols].sum(axis=0))
        # Delta propagation through the selected columns only.
        expected = delta[:, cols] @ layer.W[:, cols].T
        np.testing.assert_allclose(
            layer.backprop_delta_columns(delta[:, cols], cols), expected
        )


class TestUtilities:
    def test_column_norms(self, layer):
        np.testing.assert_allclose(
            layer.column_norms(), np.linalg.norm(layer.W, axis=0)
        )

    @settings(max_examples=25)
    @given(
        n_in=st.integers(1, 10),
        n_out=st.integers(1, 10),
        batch=st.integers(1, 5),
        seed=st.integers(0, 10**6),
    )
    def test_forward_shape_property(self, n_in, n_out, batch, seed):
        rng = np.random.default_rng(seed)
        layer = DenseLayer(n_in, n_out, rng)
        x = rng.normal(size=(batch, n_in))
        assert layer.forward(x).shape == (batch, n_out)
