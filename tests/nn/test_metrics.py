"""Unit and property tests for repro.nn.metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.metrics import (
    accuracy,
    confusion_matrix,
    distinct_predictions,
    per_class_report,
    prediction_distribution,
    prediction_entropy,
)


class TestAccuracy:
    def test_perfect(self):
        y = np.array([0, 1, 2])
        assert accuracy(y, y) == 1.0

    def test_half(self):
        assert accuracy([0, 1, 0, 1], [0, 1, 1, 0]) == 0.5

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy([0, 1], [0])

    def test_empty(self):
        with pytest.raises(ValueError):
            accuracy([], [])


class TestConfusionMatrix:
    def test_diagonal_for_perfect(self):
        y = np.array([0, 1, 2, 1])
        cm = confusion_matrix(y, y, 3)
        np.testing.assert_array_equal(cm, np.diag([1, 2, 1]))

    def test_rows_are_true_labels(self):
        cm = confusion_matrix([0, 0], [1, 1], 2)
        assert cm[0, 1] == 2
        assert cm[1, 0] == 0

    def test_total_mass(self):
        rng = np.random.default_rng(0)
        y_true = rng.integers(0, 4, 50)
        y_pred = rng.integers(0, 4, 50)
        assert confusion_matrix(y_true, y_pred, 4).sum() == 50

    def test_label_out_of_range(self):
        with pytest.raises(ValueError):
            confusion_matrix([0, 5], [0, 1], 3)

    def test_negative_label(self):
        with pytest.raises(ValueError):
            confusion_matrix([0, -1], [0, 1], 3)

    @settings(max_examples=30)
    @given(st.integers(2, 6), st.integers(1, 40), st.integers(0, 10**6))
    def test_row_sums_equal_class_counts(self, n_classes, n, seed):
        rng = np.random.default_rng(seed)
        y_true = rng.integers(0, n_classes, n)
        y_pred = rng.integers(0, n_classes, n)
        cm = confusion_matrix(y_true, y_pred, n_classes)
        np.testing.assert_array_equal(
            cm.sum(axis=1), np.bincount(y_true, minlength=n_classes)
        )
        np.testing.assert_array_equal(
            cm.sum(axis=0), np.bincount(y_pred, minlength=n_classes)
        )


class TestPerClassReport:
    def test_perfect_classifier(self):
        y = np.array([0, 1, 1, 2])
        report = per_class_report(y, y, 3)
        np.testing.assert_allclose(report["precision"], 1.0)
        np.testing.assert_allclose(report["recall"], 1.0)
        np.testing.assert_allclose(report["f1"], 1.0)
        np.testing.assert_array_equal(report["support"], [1, 2, 1])

    def test_never_predicted_class_zero_precision(self):
        report = per_class_report([0, 1], [0, 0], 2)
        assert report["precision"][1] == 0.0
        assert report["recall"][1] == 0.0
        assert report["f1"][1] == 0.0

    def test_known_values(self):
        # class 0: tp=1, fp=1 (one true-1 predicted 0), fn=1
        y_true = [0, 0, 1]
        y_pred = [0, 1, 0]
        report = per_class_report(y_true, y_pred, 2)
        assert report["precision"][0] == pytest.approx(0.5)
        assert report["recall"][0] == pytest.approx(0.5)


class TestCollapseDiagnostics:
    def test_uniform_predictions_max_entropy(self):
        preds = np.arange(10).repeat(5)
        assert prediction_entropy(preds, 10) == pytest.approx(np.log(10))

    def test_constant_predictions_zero_entropy(self):
        assert prediction_entropy(np.zeros(50, dtype=int), 10) == 0.0

    def test_distribution_sums_to_one(self):
        rng = np.random.default_rng(1)
        p = prediction_distribution(rng.integers(0, 5, 100), 5)
        assert p.sum() == pytest.approx(1.0)

    def test_distinct_predictions(self):
        assert distinct_predictions([1, 1, 3, 3, 3]) == 2

    def test_entropy_monotone_in_collapse(self):
        """More collapsed prediction sets must have lower entropy."""
        healthy = np.arange(10).repeat(10)
        collapsed = np.array([0] * 80 + [1] * 20)
        assert prediction_entropy(collapsed, 10) < prediction_entropy(healthy, 10)

    @settings(max_examples=30)
    @given(st.integers(2, 8), st.integers(1, 60), st.integers(0, 10**6))
    def test_entropy_bounds(self, n_classes, n, seed):
        rng = np.random.default_rng(seed)
        preds = rng.integers(0, n_classes, n)
        e = prediction_entropy(preds, n_classes)
        assert 0.0 <= e <= np.log(n_classes) + 1e-12


class TestTopKAccuracy:
    def test_top1_equals_accuracy(self):
        from repro.nn.metrics import topk_accuracy

        rng = np.random.default_rng(0)
        logits = rng.normal(size=(30, 5))
        y = rng.integers(0, 5, 30)
        top1 = topk_accuracy(y, logits, k=1)
        assert top1 == pytest.approx(accuracy(y, logits.argmax(axis=1)))

    def test_full_k_is_one(self):
        from repro.nn.metrics import topk_accuracy

        rng = np.random.default_rng(1)
        logits = rng.normal(size=(10, 4))
        y = rng.integers(0, 4, 10)
        assert topk_accuracy(y, logits, k=4) == 1.0

    def test_monotone_in_k(self):
        from repro.nn.metrics import topk_accuracy

        rng = np.random.default_rng(2)
        logits = rng.normal(size=(50, 6))
        y = rng.integers(0, 6, 50)
        accs = [topk_accuracy(y, logits, k=k) for k in range(1, 7)]
        assert accs == sorted(accs)

    def test_validation(self):
        from repro.nn.metrics import topk_accuracy

        with pytest.raises(ValueError):
            topk_accuracy(np.array([0]), np.zeros((2, 3)))
        with pytest.raises(ValueError):
            topk_accuracy(np.array([0, 1]), np.zeros((2, 3)), k=4)


class TestCollapseReport:
    def test_healthy_classifier(self):
        from repro.nn.metrics import collapse_report

        preds = np.arange(10).repeat(10)
        report = collapse_report(preds, 10)
        assert report["entropy"] == pytest.approx(np.log(10))
        assert report["distinct"] == 10
        assert report["top_share"] == pytest.approx(0.1)

    def test_collapsed_classifier(self):
        from repro.nn.metrics import collapse_report

        report = collapse_report(np.zeros(100, dtype=int), 10)
        assert report["entropy"] == 0.0
        assert report["distinct"] == 1
        assert report["top_share"] == 1.0
