"""Unit tests for repro.nn.init."""

import numpy as np
import pytest

from repro.nn.init import (
    get_initializer,
    he_normal,
    he_uniform,
    scaled_columns,
    uniform,
    xavier_normal,
    xavier_uniform,
    zeros,
)

ALL = [he_normal, he_uniform, xavier_normal, xavier_uniform, uniform, zeros]


@pytest.mark.parametrize("init", ALL, ids=lambda f: f.__name__)
def test_shapes(init, rng):
    w = init(13, 7, rng)
    assert w.shape == (13, 7)


def test_he_normal_variance(rng):
    n_in = 400
    w = he_normal(n_in, 500, rng)
    assert w.var() == pytest.approx(2.0 / n_in, rel=0.1)


def test_xavier_normal_variance(rng):
    n_in, n_out = 300, 200
    w = xavier_normal(n_in, n_out, rng)
    assert w.var() == pytest.approx(2.0 / (n_in + n_out), rel=0.1)


def test_he_uniform_bounds(rng):
    n_in = 50
    w = he_uniform(n_in, 60, rng)
    limit = np.sqrt(6.0 / n_in)
    assert np.abs(w).max() <= limit


def test_uniform_bounds(rng):
    w = uniform(20, 20, rng)
    assert np.abs(w).max() <= 0.05


def test_zeros(rng):
    assert not zeros(5, 5, rng).any()


def test_deterministic_given_seed():
    a = he_normal(10, 10, np.random.default_rng(42))
    b = he_normal(10, 10, np.random.default_rng(42))
    np.testing.assert_array_equal(a, b)


class TestScaledColumns:
    def test_all_column_norms_bounded(self, rng):
        w = scaled_columns(100, 80, rng, max_norm=0.9)
        norms = np.linalg.norm(w, axis=0)
        assert (norms <= 0.9 + 1e-12).all()

    def test_small_columns_untouched(self, rng):
        # With a huge max_norm nothing should be rescaled.
        w_raw = he_normal(10, 10, np.random.default_rng(5))
        w = scaled_columns(10, 10, np.random.default_rng(5), max_norm=0.999999)
        # Norms of he_normal(10,10) typically exceed 1, so most get scaled;
        # instead check scaling preserves direction.
        cos = np.sum(w * w_raw, axis=0) / (
            np.linalg.norm(w, axis=0) * np.linalg.norm(w_raw, axis=0)
        )
        np.testing.assert_allclose(cos, 1.0, atol=1e-9)

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.5, 2.0])
    def test_invalid_max_norm(self, bad, rng):
        with pytest.raises(ValueError):
            scaled_columns(4, 4, rng, max_norm=bad)


class TestRegistry:
    def test_lookup_by_name(self):
        assert get_initializer("he_normal") is he_normal

    def test_callable_passthrough(self):
        fn = lambda i, o, r: np.ones((i, o))
        assert get_initializer(fn) is fn

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown initializer"):
            get_initializer("orthogonal")
