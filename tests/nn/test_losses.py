"""Unit tests for repro.nn.losses."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.activations import LogSoftmax
from repro.nn.losses import CrossEntropyLoss, MSELoss, NLLLoss, get_loss


class TestNLL:
    def test_perfect_prediction_near_zero_loss(self):
        logp = np.log(np.array([[0.999, 0.0005, 0.0005]]))
        assert NLLLoss().value(logp, np.array([0])) == pytest.approx(0.001, abs=1e-3)

    def test_uniform_prediction_log_k(self):
        k = 4
        logp = np.full((2, k), np.log(1.0 / k))
        assert NLLLoss().value(logp, np.array([1, 3])) == pytest.approx(np.log(k))

    def test_accepts_one_hot_targets(self):
        logp = np.log(np.array([[0.7, 0.3], [0.2, 0.8]]))
        onehot = np.array([[1.0, 0.0], [0.0, 1.0]])
        ints = np.array([0, 1])
        assert NLLLoss().value(logp, onehot) == pytest.approx(
            NLLLoss().value(logp, ints)
        )

    def test_batch_mismatch_raises(self):
        with pytest.raises(ValueError, match="batch mismatch"):
            NLLLoss().value(np.zeros((3, 2)), np.array([0, 1]))

    def test_gradient_only_on_true_class(self):
        logp = np.log(np.array([[0.5, 0.5]]))
        grad = NLLLoss().gradient(logp, np.array([1]))
        np.testing.assert_allclose(grad, [[0.0, -1.0]])

    def test_gradient_scaled_by_batch(self):
        logp = np.log(np.full((4, 2), 0.5))
        grad = NLLLoss().gradient(logp, np.array([0, 0, 1, 1]))
        np.testing.assert_allclose(grad.sum(), -1.0)


class TestFusedGradient:
    def test_matches_finite_difference(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(3, 5))
        y = np.array([0, 2, 4])
        loss_fn = lambda z: NLLLoss().value(LogSoftmax().forward(z), y)
        grad = NLLLoss.fused_logit_gradient(logits, y)
        eps = 1e-6
        for i in range(3):
            for j in range(5):
                zp = logits.copy()
                zp[i, j] += eps
                zm = logits.copy()
                zm[i, j] -= eps
                numeric = (loss_fn(zp) - loss_fn(zm)) / (2 * eps)
                assert grad[i, j] == pytest.approx(numeric, abs=1e-6)

    def test_rows_sum_to_zero(self):
        rng = np.random.default_rng(1)
        logits = rng.normal(size=(6, 4))
        y = rng.integers(0, 4, size=6)
        grad = NLLLoss.fused_logit_gradient(logits, y)
        np.testing.assert_allclose(grad.sum(axis=1), 0.0, atol=1e-12)

    @settings(max_examples=30)
    @given(st.integers(1, 8), st.integers(2, 6), st.integers(0, 10**6))
    def test_fused_equals_chain(self, batch, classes, seed):
        rng = np.random.default_rng(seed)
        logits = rng.normal(size=(batch, classes))
        y = rng.integers(0, classes, size=batch)
        probs = LogSoftmax.softmax(logits)
        expected = probs.copy()
        expected[np.arange(batch), y] -= 1.0
        expected /= batch
        np.testing.assert_allclose(
            NLLLoss.fused_logit_gradient(logits, y), expected, atol=1e-12
        )


class TestCrossEntropy:
    def test_equals_nll_of_logsoftmax(self):
        rng = np.random.default_rng(2)
        logits = rng.normal(size=(4, 3))
        y = np.array([0, 1, 2, 1])
        expected = NLLLoss().value(LogSoftmax().forward(logits), y)
        assert CrossEntropyLoss().value(logits, y) == pytest.approx(expected)

    def test_gradient_is_fused(self):
        rng = np.random.default_rng(3)
        logits = rng.normal(size=(2, 3))
        y = np.array([1, 0])
        np.testing.assert_allclose(
            CrossEntropyLoss().gradient(logits, y),
            NLLLoss.fused_logit_gradient(logits, y),
        )


class TestMSE:
    def test_zero_at_exact_match(self):
        out = np.array([[1.0, 2.0]])
        assert MSELoss().value(out, out) == 0.0

    def test_value_formula(self):
        out = np.array([[1.0, 0.0]])
        tgt = np.array([[0.0, 0.0]])
        assert MSELoss().value(out, tgt) == pytest.approx(0.5)

    def test_gradient_finite_difference(self):
        rng = np.random.default_rng(4)
        out = rng.normal(size=(2, 3))
        tgt = rng.normal(size=(2, 3))
        grad = MSELoss().gradient(out, tgt)
        eps = 1e-6
        op = out.copy()
        op[0, 1] += eps
        om = out.copy()
        om[0, 1] -= eps
        numeric = (MSELoss().value(op, tgt) - MSELoss().value(om, tgt)) / (2 * eps)
        assert grad[0, 1] == pytest.approx(numeric, abs=1e-8)


class TestRegistry:
    @pytest.mark.parametrize("name", ["nll", "cross_entropy", "mse"])
    def test_lookup(self, name):
        assert get_loss(name).name == name

    def test_instance_passthrough(self):
        loss = MSELoss()
        assert get_loss(loss) is loss

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown loss"):
            get_loss("hinge")


def test_nll_empty_batch_raises():
    with pytest.raises(ValueError, match="empty batch"):
        NLLLoss().value(np.empty((0, 3)), np.empty(0, dtype=int))
