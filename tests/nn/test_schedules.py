"""Tests for learning-rate schedules and their Trainer integration."""

import numpy as np
import pytest

from repro.core.standard import StandardTrainer
from repro.nn.network import MLP
from repro.nn.schedules import (
    ConstantSchedule,
    CosineSchedule,
    ExponentialDecaySchedule,
    StepDecaySchedule,
    WarmupSchedule,
    get_schedule,
)


class TestConstant:
    def test_fixed(self):
        s = ConstantSchedule(1e-3)
        assert s(0) == s(100) == 1e-3

    def test_invalid(self):
        with pytest.raises(ValueError):
            ConstantSchedule(0.0)


class TestStepDecay:
    def test_halves_every_period(self):
        s = StepDecaySchedule(1.0, factor=0.5, every=10)
        assert s(0) == 1.0
        assert s(9) == 1.0
        assert s(10) == 0.5
        assert s(25) == 0.25

    @pytest.mark.parametrize("kw", [{"factor": 0.0}, {"factor": 1.5}, {"every": 0}])
    def test_invalid(self, kw):
        with pytest.raises(ValueError):
            StepDecaySchedule(1.0, **kw)


class TestExponential:
    def test_geometric(self):
        s = ExponentialDecaySchedule(1.0, decay=0.9)
        assert s(0) == 1.0
        assert s(2) == pytest.approx(0.81)

    def test_monotone(self):
        s = ExponentialDecaySchedule(1e-2, decay=0.8)
        rates = [s(e) for e in range(10)]
        assert rates == sorted(rates, reverse=True)


class TestCosine:
    def test_endpoints(self):
        s = CosineSchedule(1.0, total_epochs=10, lr_min=0.1)
        assert s(0) == pytest.approx(1.0)
        assert s(10) == pytest.approx(0.1)
        assert s(99) == pytest.approx(0.1)  # clamped past the horizon

    def test_midpoint(self):
        s = CosineSchedule(1.0, total_epochs=10, lr_min=0.0)
        assert s(5) == pytest.approx(0.5)

    def test_invalid_lr_min(self):
        with pytest.raises(ValueError):
            CosineSchedule(0.1, total_epochs=5, lr_min=0.2)


class TestWarmup:
    def test_ramps_then_follows(self):
        s = WarmupSchedule(ConstantSchedule(1.0), warmup_epochs=4)
        assert s(0) == pytest.approx(0.25)
        assert s(3) == pytest.approx(1.0)
        assert s(10) == 1.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            WarmupSchedule(ConstantSchedule(1.0), warmup_epochs=0)


class TestRegistry:
    def test_lookup(self):
        s = get_schedule("cosine", 1e-2, total_epochs=5)
        assert isinstance(s, CosineSchedule)

    def test_callable_passthrough(self):
        fn = lambda e: 0.1
        assert get_schedule(fn, 1.0) is fn

    def test_warmup_lookup(self):
        s = get_schedule("warmup", 1e-2)
        assert isinstance(s, WarmupSchedule)
        assert isinstance(s.after, ConstantSchedule)

    def test_warmup_values_default_constant(self):
        s = get_schedule("warmup", 1.0, warmup_epochs=4)
        assert s(0) == pytest.approx(0.25)
        assert s(1) == pytest.approx(0.5)
        assert s(3) == pytest.approx(1.0)
        assert s(10) == 1.0

    def test_warmup_wraps_named_inner_schedule(self):
        s = get_schedule("warmup", 1.0, after="exponential", decay=0.5,
                         warmup_epochs=2)
        assert isinstance(s.after, ExponentialDecaySchedule)
        # Ramp targets the inner schedule's value at the hand-off epoch.
        assert s(0) == pytest.approx(0.5 * 1.0 * 0.5**2)
        assert s(5) == pytest.approx(1.0 * 0.5**5)

    def test_warmup_wraps_callable_inner_schedule(self):
        s = get_schedule("warmup", 1.0, after=lambda e: 0.2, warmup_epochs=2)
        assert s(0) == pytest.approx(0.1)
        assert s(7) == pytest.approx(0.2)

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown schedule"):
            get_schedule("cyclical", 1.0)


class TestTrainerIntegration:
    def test_schedule_drives_optimizer_lr(self, rng):
        net = MLP([6, 8, 3], seed=0)
        trainer = StandardTrainer(net, lr=1.0, seed=1)
        seen = []

        def spy(epoch):
            rate = 0.1 / (epoch + 1)
            seen.append(rate)
            return rate

        trainer.fit(
            rng.normal(size=(20, 6)),
            rng.integers(0, 3, 20),
            epochs=3,
            batch_size=10,
            lr_schedule=spy,
        )
        assert seen == [0.1, 0.05, pytest.approx(0.1 / 3)]
        assert trainer.optimizer.lr == pytest.approx(0.1 / 3)

    def test_decaying_schedule_trains(self, tiny_dataset):
        net = MLP([tiny_dataset.input_dim, 32, tiny_dataset.n_classes], seed=0)
        trainer = StandardTrainer(net, lr=1e-2, seed=1)
        history = trainer.fit(
            tiny_dataset.x_train,
            tiny_dataset.y_train,
            epochs=6,
            batch_size=10,
            lr_schedule=CosineSchedule(1e-2, total_epochs=6),
        )
        assert history.losses()[-1] < history.losses()[0]
