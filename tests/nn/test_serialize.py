"""Tests for MLP serialisation."""

import numpy as np
import pytest

from repro.nn.network import MLP
from repro.nn.serialize import load_mlp, save_mlp


class TestRoundTrip:
    def test_weights_preserved(self, tmp_path, rng):
        net = MLP([8, 6, 4], seed=3)
        path = save_mlp(net, tmp_path / "model")
        loaded = load_mlp(path)
        assert loaded.layer_sizes == net.layer_sizes
        for la, lb in zip(net.layers, loaded.layers):
            np.testing.assert_array_equal(la.W, lb.W)
            np.testing.assert_array_equal(la.b, lb.b)

    def test_predictions_identical(self, tmp_path, rng):
        net = MLP([8, 16, 3], seed=0)
        x = rng.normal(size=(10, 8))
        path = save_mlp(net, tmp_path / "model.npz")
        loaded = load_mlp(path)
        np.testing.assert_array_equal(net.predict(x), loaded.predict(x))

    def test_activations_preserved(self, tmp_path):
        net = MLP([4, 3, 2], hidden_activation="tanh", seed=0)
        loaded = load_mlp(save_mlp(net, tmp_path / "m"))
        assert loaded.hidden_activation.name == "tanh"

    def test_suffix_appended(self, tmp_path):
        path = save_mlp(MLP([4, 2], seed=0), tmp_path / "model")
        assert path.suffix == ".npz"

    def test_trained_model_round_trip(self, tmp_path, tiny_dataset):
        from repro.core.standard import StandardTrainer

        net = MLP([tiny_dataset.input_dim, 16, tiny_dataset.n_classes], seed=0)
        StandardTrainer(net, lr=1e-2, seed=1).fit(
            tiny_dataset.x_train, tiny_dataset.y_train, epochs=2, batch_size=20
        )
        loaded = load_mlp(save_mlp(net, tmp_path / "trained"))
        np.testing.assert_array_equal(
            net.predict(tiny_dataset.x_test), loaded.predict(tiny_dataset.x_test)
        )


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_mlp(tmp_path / "ghost.npz")

    def test_not_a_model(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, x=np.zeros(3))
        with pytest.raises(ValueError, match="not a saved MLP"):
            load_mlp(path)

    def test_creates_parent_dirs(self, tmp_path):
        path = save_mlp(MLP([4, 2], seed=0), tmp_path / "a" / "b" / "model")
        assert path.exists()
