"""Tests for MLP and ConvClassifier serialisation."""

import numpy as np
import pytest

from repro.nn.conv import ConvClassifier, ConvFeatureExtractor
from repro.nn.network import MLP
from repro.nn.serialize import load_conv, load_mlp, save_conv, save_mlp


class TestRoundTrip:
    def test_weights_preserved(self, tmp_path, rng):
        net = MLP([8, 6, 4], seed=3)
        path = save_mlp(net, tmp_path / "model")
        loaded = load_mlp(path)
        assert loaded.layer_sizes == net.layer_sizes
        for la, lb in zip(net.layers, loaded.layers):
            np.testing.assert_array_equal(la.W, lb.W)
            np.testing.assert_array_equal(la.b, lb.b)

    def test_predictions_identical(self, tmp_path, rng):
        net = MLP([8, 16, 3], seed=0)
        x = rng.normal(size=(10, 8))
        path = save_mlp(net, tmp_path / "model.npz")
        loaded = load_mlp(path)
        np.testing.assert_array_equal(net.predict(x), loaded.predict(x))

    def test_activations_preserved(self, tmp_path):
        net = MLP([4, 3, 2], hidden_activation="tanh", seed=0)
        loaded = load_mlp(save_mlp(net, tmp_path / "m"))
        assert loaded.hidden_activation.name == "tanh"

    def test_suffix_appended(self, tmp_path):
        path = save_mlp(MLP([4, 2], seed=0), tmp_path / "model")
        assert path.suffix == ".npz"

    def test_trained_model_round_trip(self, tmp_path, tiny_dataset):
        from repro.core.standard import StandardTrainer

        net = MLP([tiny_dataset.input_dim, 16, tiny_dataset.n_classes], seed=0)
        StandardTrainer(net, lr=1e-2, seed=1).fit(
            tiny_dataset.x_train, tiny_dataset.y_train, epochs=2, batch_size=20
        )
        loaded = load_mlp(save_mlp(net, tmp_path / "trained"))
        np.testing.assert_array_equal(
            net.predict(tiny_dataset.x_test), loaded.predict(tiny_dataset.x_test)
        )


def _conv_model(seed=0, image=8):
    extractor = ConvFeatureExtractor(
        in_channels=3, channels=(4, 6), field=3, pool=2, seed=seed
    )
    head = MLP([extractor.feature_dim(image, image), 12, 5], seed=seed)
    return ConvClassifier(extractor, head, lr=3e-2)


class TestConvRoundTrip:
    def test_all_parameters_preserved_bitwise(self, tmp_path):
        model = _conv_model(seed=7)
        loaded = load_conv(save_conv(model, tmp_path / "conv"))
        assert loaded.lr == model.lr
        assert len(loaded.extractor.stages) == len(model.extractor.stages)
        for (ca, pa), (cb, pb) in zip(
            model.extractor.stages, loaded.extractor.stages
        ):
            np.testing.assert_array_equal(ca.kernels, cb.kernels)
            np.testing.assert_array_equal(ca.bias, cb.bias)
            assert (ca.field, ca.stride, ca.pad) == (cb.field, cb.stride, cb.pad)
            assert pa.size == pb.size
        for la, lb in zip(model.head.layers, loaded.head.layers):
            np.testing.assert_array_equal(la.W, lb.W)
            np.testing.assert_array_equal(la.b, lb.b)

    def test_predictions_identical(self, tmp_path, rng):
        model = _conv_model(seed=1)
        x = rng.normal(size=(6, 3, 8, 8))
        loaded = load_conv(save_conv(model, tmp_path / "conv.npz"))
        np.testing.assert_array_equal(model.predict(x), loaded.predict(x))
        np.testing.assert_array_equal(model.features(x), loaded.features(x))

    def test_trained_model_round_trip(self, tmp_path, rng):
        model = _conv_model(seed=2)
        x = rng.normal(size=(20, 3, 8, 8))
        y = rng.integers(0, 5, size=20)
        model.fit(x, y, epochs=1, batch_size=5, seed=0)
        loaded = load_conv(save_conv(model, tmp_path / "trained"))
        np.testing.assert_array_equal(model.predict(x), loaded.predict(x))

    def test_suffix_appended(self, tmp_path):
        path = save_conv(_conv_model(), tmp_path / "conv")
        assert path.suffix == ".npz"


class TestKindMismatch:
    def test_load_mlp_rejects_conv_archive(self, tmp_path):
        path = save_conv(_conv_model(), tmp_path / "conv")
        with pytest.raises(ValueError, match="conv_classifier"):
            load_mlp(path)

    def test_load_conv_rejects_mlp_archive(self, tmp_path):
        path = save_mlp(MLP([4, 2], seed=0), tmp_path / "mlp")
        with pytest.raises(ValueError, match="expected 'conv_classifier'"):
            load_conv(path)


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_mlp(tmp_path / "ghost.npz")
        with pytest.raises(FileNotFoundError):
            load_conv(tmp_path / "ghost.npz")

    def test_not_a_model(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, x=np.zeros(3))
        with pytest.raises(ValueError, match="not a saved model"):
            load_mlp(path)

    def test_creates_parent_dirs(self, tmp_path):
        path = save_mlp(MLP([4, 2], seed=0), tmp_path / "a" / "b" / "model")
        assert path.exists()


class TestAtomicWrite:
    def test_no_temp_files_left_behind(self, tmp_path):
        from repro.nn.serialize import atomic_savez

        path = tmp_path / "model.npz"
        for _ in range(3):
            atomic_savez(path, {"x": np.arange(4)})
        assert sorted(p.name for p in tmp_path.iterdir()) == ["model.npz"]

    def test_failed_write_preserves_previous_archive(self, tmp_path):
        """A crash mid-save must leave the old archive intact."""
        from repro.nn.serialize import atomic_savez

        path = tmp_path / "model.npz"
        atomic_savez(path, {"x": np.arange(4)})

        class Unpicklable:
            def __reduce__(self):
                raise RuntimeError("boom mid-write")

        with pytest.raises(RuntimeError):
            atomic_savez(path, {"x": np.array([Unpicklable()], dtype=object)})
        loaded = np.load(path)
        np.testing.assert_array_equal(loaded["x"], np.arange(4))
        assert sorted(p.name for p in tmp_path.iterdir()) == ["model.npz"]

    def test_save_mlp_is_atomic(self, tmp_path):
        path = save_mlp(MLP([4, 3, 2], seed=0), tmp_path / "model")
        save_mlp(MLP([4, 3, 2], seed=1), path)
        assert sorted(p.name for p in tmp_path.iterdir()) == ["model.npz"]


class TestCorruptArchives:
    @pytest.mark.parametrize("keep_fraction", [0.2, 0.6, 0.95])
    def test_truncated_mlp_archive(self, tmp_path, keep_fraction):
        path = save_mlp(MLP([16, 8, 4], seed=0), tmp_path / "model")
        blob = path.read_bytes()
        path.write_bytes(blob[: int(len(blob) * keep_fraction)])
        with pytest.raises(ValueError, match="truncated or corrupt"):
            load_mlp(path)

    def test_truncated_conv_archive(self, tmp_path):
        path = save_conv(_conv_model(), tmp_path / "conv")
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(ValueError, match="truncated or corrupt"):
            load_conv(path)

    def test_garbage_bytes(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"\x00\x01 definitely not a zip")
        with pytest.raises(ValueError, match="truncated or corrupt"):
            load_mlp(path)

    def test_missing_layer_arrays(self, tmp_path):
        """A valid zip with members deleted fails with the model error,
        not a KeyError."""
        import json

        meta = {"format_version": 1, "kind": "mlp", "layer_sizes": [4, 3, 2],
                "hidden_activation": "relu", "output_activation": "log_softmax"}
        path = tmp_path / "partial.npz"
        np.savez(
            path,
            meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
            W0=np.zeros((4, 3)), b0=np.zeros(3),
        )
        with pytest.raises(ValueError, match="layer 1 arrays missing"):
            load_mlp(path)
