"""Unit tests for repro.nn.optim — dense and sparse-column updates."""

import numpy as np
import pytest

from repro.nn.optim import SGD, Adagrad, Adam, Momentum, get_optimizer


@pytest.fixture
def param():
    return np.ones((4, 6))


@pytest.fixture
def grad():
    rng = np.random.default_rng(0)
    return rng.normal(size=(4, 6))


class TestSGD:
    def test_dense_step(self, param, grad):
        opt = SGD(lr=0.1)
        expected = param - 0.1 * grad
        opt.update("w", param, grad)
        np.testing.assert_allclose(param, expected)

    def test_column_step_touches_only_selected(self, param, grad):
        opt = SGD(lr=0.1)
        cols = np.array([1, 4])
        before = param.copy()
        opt.update("w", param, grad[:, cols], index=cols)
        untouched = np.setdiff1d(np.arange(6), cols)
        np.testing.assert_array_equal(param[:, untouched], before[:, untouched])
        np.testing.assert_allclose(
            param[:, cols], before[:, cols] - 0.1 * grad[:, cols]
        )

    def test_bias_column_step(self):
        opt = SGD(lr=1.0)
        b = np.zeros(5)
        opt.update("b", b, np.array([2.0, 3.0]), index=np.array([0, 4]))
        np.testing.assert_allclose(b, [-2.0, 0.0, 0.0, 0.0, -3.0])

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD(lr=0.0)


class TestMomentum:
    def test_accumulates_velocity(self):
        opt = Momentum(lr=1.0, beta=0.5)
        p = np.zeros(1)
        g = np.ones(1)
        opt.update("p", p, g)  # v=1, p=-1
        opt.update("p", p, g)  # v=1.5, p=-2.5
        assert p[0] == pytest.approx(-2.5)

    def test_invalid_beta(self):
        with pytest.raises(ValueError):
            Momentum(lr=0.1, beta=1.0)

    def test_sparse_state_isolated_per_column(self):
        opt = Momentum(lr=1.0, beta=0.9)
        p = np.zeros((2, 3))
        g = np.ones((2, 1))
        opt.update("w", p, g, index=np.array([0]))
        opt.update("w", p, g, index=np.array([0]))
        # Column 0 has momentum 1.9 cumulative; others untouched.
        assert p[0, 0] == pytest.approx(-2.9)
        assert p[0, 1] == 0.0


class TestAdagrad:
    def test_step_size_shrinks(self):
        opt = Adagrad(lr=1.0)
        p = np.zeros(1)
        g = np.ones(1)
        opt.update("p", p, g)
        first = -p[0]
        before = p[0]
        opt.update("p", p, g)
        second = before - p[0]
        assert second < first

    def test_first_step_is_lr(self):
        opt = Adagrad(lr=0.5)
        p = np.zeros(1)
        opt.update("p", p, np.array([2.0]))
        assert p[0] == pytest.approx(-0.5, rel=1e-6)


class TestAdam:
    def test_first_step_magnitude_is_lr(self):
        """Bias correction makes the first Adam step ≈ lr in magnitude."""
        opt = Adam(lr=0.01)
        p = np.zeros(3)
        opt.update("p", p, np.array([10.0, -3.0, 0.5]))
        np.testing.assert_allclose(np.abs(p), 0.01, rtol=1e-4)

    def test_lazy_column_step_counts(self):
        """Column step counters advance independently (lazy Adam)."""
        opt = Adam(lr=0.1)
        p = np.zeros((2, 3))
        g = np.ones((2, 1))
        opt.update("w", p, g, index=np.array([0]))
        opt.update("w", p, g, index=np.array([0]))
        opt.update("w", p, np.ones((2, 1)), index=np.array([2]))
        state = opt._state["w"]
        assert state["t"][0] == 2
        assert state["t"][1] == 0
        assert state["t"][2] == 1
        # Column 2's single update should look like a fresh first step.
        assert abs(p[0, 2]) == pytest.approx(0.1, rel=1e-4)

    def test_dense_and_sparse_interleave(self):
        opt = Adam(lr=0.1)
        p = np.zeros((2, 2))
        opt.update("w", p, np.ones((2, 2)))
        opt.update("w", p, np.ones((2, 1)), index=np.array([1]))
        state = opt._state["w"]
        np.testing.assert_array_equal(state["t"], [1, 2])

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam(lr=0.1, beta1=1.0)


class TestConvergence:
    @pytest.mark.parametrize("name", ["sgd", "momentum", "adagrad", "adam"])
    def test_minimises_quadratic(self, name):
        """Every optimiser should make progress on f(p) = ||p - t||^2."""
        target = np.array([1.0, -2.0, 3.0])
        p = np.zeros(3)
        opt = get_optimizer(name, lr=0.1)
        # Adagrad's step decays like 1/sqrt(t); give it more iterations.
        for _ in range(2000 if name == "adagrad" else 300):
            grad = 2.0 * (p - target)
            opt.update("p", p, grad)
        np.testing.assert_allclose(p, target, atol=0.1)


class TestRegistry:
    def test_lookup(self):
        assert isinstance(get_optimizer("adam", 0.1), Adam)

    def test_instance_passthrough(self):
        opt = SGD(0.1)
        assert get_optimizer(opt, 0.5) is opt

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown optimizer"):
            get_optimizer("lion", 0.1)

    def test_reset_clears_state(self):
        opt = Adam(lr=0.1)
        p = np.zeros(2)
        opt.update("p", p, np.ones(2))
        opt.reset()
        assert not opt._state


class TestWeightDecay:
    def test_sgd_decoupled_decay(self):
        opt = SGD(lr=0.1)
        opt.weight_decay = 0.5
        p = np.full(3, 2.0)
        opt.update("p", p, np.zeros(3))
        # p <- p * (1 - lr*wd) = 2 * 0.95
        np.testing.assert_allclose(p, 1.9)

    def test_constructor_kwarg(self):
        opt = get_optimizer("adam", 0.1, weight_decay=0.01)
        assert opt.weight_decay == 0.01

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            SGD(lr=0.1, weight_decay=-0.1)

    def test_sparse_decay_only_touched_columns(self):
        opt = SGD(lr=0.1, weight_decay=1.0)
        p = np.ones((2, 4))
        opt.update("w", p, np.zeros((2, 1)), index=np.array([2]))
        np.testing.assert_allclose(p[:, 2], 0.9)
        np.testing.assert_allclose(p[:, [0, 1, 3]], 1.0)


class TestGradClipping:
    def test_large_gradient_clipped(self):
        opt = SGD(lr=1.0, max_grad_norm=1.0)
        p = np.zeros(2)
        opt.update("p", p, np.array([30.0, 40.0]))  # norm 50 -> scaled to 1
        np.testing.assert_allclose(np.linalg.norm(p), 1.0)
        np.testing.assert_allclose(p, [-0.6, -0.8])

    def test_small_gradient_untouched(self):
        opt = SGD(lr=1.0, max_grad_norm=10.0)
        p = np.zeros(2)
        opt.update("p", p, np.array([0.3, 0.4]))
        np.testing.assert_allclose(p, [-0.3, -0.4])

    def test_zero_gradient_safe(self):
        opt = SGD(lr=1.0, max_grad_norm=1.0)
        p = np.ones(2)
        opt.update("p", p, np.zeros(2))
        np.testing.assert_allclose(p, 1.0)

    def test_invalid_norm(self):
        with pytest.raises(ValueError):
            SGD(lr=0.1, max_grad_norm=0.0)

    def test_clipping_stabilises_deep_mc(self, tiny_dataset):
        """The practical payoff: gradient clipping lets deep MC-approx run
        at a learning rate that would otherwise risk divergence."""
        from repro.core.mc_approx import MCApproxTrainer
        from repro.nn.network import MLP
        from repro.nn.optim import SGD as SGDOpt

        net = MLP([tiny_dataset.input_dim] + [32] * 5 + [tiny_dataset.n_classes],
                  seed=0)
        opt = SGDOpt(lr=5e-2, max_grad_norm=1.0)
        trainer = MCApproxTrainer(net, optimizer=opt, k=10,
                                  min_node_samples=4, seed=1)
        history = trainer.fit(
            tiny_dataset.x_train, tiny_dataset.y_train, epochs=3, batch_size=20
        )
        assert np.isfinite(history.losses()).all()
