"""Tests for the checkpoint archive layer (repro.nn.checkpoint).

The trainer-level resume guarantees live in
``tests/core/test_resume_equality.py``; this file covers the archive
format itself: lossless round-trips, the atomic-write contract, and the
clear errors promised for corrupt, truncated or foreign archives.
"""

import os

import numpy as np
import pytest

from repro.nn.checkpoint import (
    TrainerCheckpoint,
    checkpoint_path,
    load_checkpoint,
    save_checkpoint,
)


def sample_checkpoint() -> TrainerCheckpoint:
    rng = np.random.default_rng(0)
    return TrainerCheckpoint(
        method="standard",
        epoch=4,
        stopped_early=False,
        payload={
            "rng_state": np.random.default_rng(3).bit_generator.state,
            "early_stopping": {"best_val": 0.75, "epochs_since_best": 1},
            "nested": {"pi": 0.1 + 0.2, "big": 2**77},
        },
        arrays={
            "net.W0": rng.normal(size=(5, 7)),
            "net.b0": rng.normal(size=7),
            "aux.touched0": np.array([1, 4, 6], dtype=np.int64),
        },
    )


class TestRoundTrip:
    def test_everything_preserved_bitwise(self, tmp_path):
        ckpt = sample_checkpoint()
        path = save_checkpoint(ckpt, tmp_path / "t.ckpt.npz")
        loaded = load_checkpoint(path)
        assert loaded.method == ckpt.method
        assert loaded.epoch == ckpt.epoch
        assert loaded.stopped_early == ckpt.stopped_early
        # JSON round-trips floats and arbitrary-precision ints exactly,
        # which is what makes rng bit-generator states checkpointable.
        assert loaded.payload == ckpt.payload
        assert set(loaded.arrays) == set(ckpt.arrays)
        for name in ckpt.arrays:
            np.testing.assert_array_equal(loaded.arrays[name], ckpt.arrays[name])
            assert loaded.arrays[name].dtype == ckpt.arrays[name].dtype

    def test_rng_state_restores_identical_stream(self, tmp_path):
        gen = np.random.default_rng(42)
        gen.normal(size=100)  # advance
        ckpt = TrainerCheckpoint(
            method="standard",
            epoch=0,
            payload={"rng_state": gen.bit_generator.state},
        )
        expected = gen.normal(size=8)
        loaded = load_checkpoint(save_checkpoint(ckpt, tmp_path / "r.npz"))
        fresh = np.random.default_rng(0)
        fresh.bit_generator.state = loaded.payload["rng_state"]
        np.testing.assert_array_equal(fresh.normal(size=8), expected)

    def test_stopped_early_flag(self, tmp_path):
        ckpt = sample_checkpoint()
        ckpt.stopped_early = True
        loaded = load_checkpoint(save_checkpoint(ckpt, tmp_path / "s.npz"))
        assert loaded.stopped_early is True


class TestCheckpointPath:
    def test_tagged(self, tmp_path):
        assert checkpoint_path(tmp_path, "run-7") == tmp_path / "run-7.ckpt.npz"

    def test_default_tag(self, tmp_path):
        assert checkpoint_path(tmp_path) == tmp_path / "trainer.ckpt.npz"


class TestAtomicity:
    def test_no_temp_files_left_behind(self, tmp_path):
        path = tmp_path / "t.ckpt.npz"
        for _ in range(3):
            save_checkpoint(sample_checkpoint(), path)
        assert os.listdir(tmp_path) == ["t.ckpt.npz"]

    def test_overwrite_replaces_whole_archive(self, tmp_path):
        path = tmp_path / "t.ckpt.npz"
        first = sample_checkpoint()
        save_checkpoint(first, path)
        second = TrainerCheckpoint(
            method="standard", epoch=9, arrays={"net.W0": np.ones(2)}
        )
        save_checkpoint(second, path)
        loaded = load_checkpoint(path)
        assert loaded.epoch == 9
        assert set(loaded.arrays) == {"net.W0"}

    def test_reserved_array_name_rejected(self, tmp_path):
        ckpt = sample_checkpoint()
        ckpt.arrays["meta"] = np.zeros(1)
        with pytest.raises(ValueError, match="reserved"):
            save_checkpoint(ckpt, tmp_path / "t.npz")


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_checkpoint(tmp_path / "ghost.ckpt.npz")

    @pytest.mark.parametrize("keep_fraction", [0.25, 0.5, 0.9])
    def test_truncated_archive(self, tmp_path, keep_fraction):
        path = save_checkpoint(sample_checkpoint(), tmp_path / "t.ckpt.npz")
        blob = path.read_bytes()
        path.write_bytes(blob[: int(len(blob) * keep_fraction)])
        with pytest.raises(ValueError, match="truncated or corrupt"):
            load_checkpoint(path)

    def test_garbage_bytes(self, tmp_path):
        path = tmp_path / "junk.ckpt.npz"
        path.write_bytes(b"not a zip archive at all")
        with pytest.raises(ValueError, match="truncated or corrupt"):
            load_checkpoint(path)

    def test_non_checkpoint_npz(self, tmp_path):
        path = tmp_path / "plain.npz"
        np.savez(path, x=np.zeros(3))
        with pytest.raises(ValueError, match="not a trainer checkpoint"):
            load_checkpoint(path)

    def test_foreign_kind_rejected(self, tmp_path):
        from repro.nn.network import MLP
        from repro.nn.serialize import save_mlp

        path = save_mlp(MLP([4, 2], seed=0), tmp_path / "model")
        with pytest.raises(ValueError, match="trainer_checkpoint"):
            load_checkpoint(path)

    def test_unknown_format_version(self, tmp_path):
        import json

        meta = {"format_version": 99, "kind": "trainer_checkpoint",
                "method": "standard", "epoch": 0, "stopped_early": False}
        path = tmp_path / "future.ckpt.npz"
        np.savez(
            path,
            meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        )
        with pytest.raises(ValueError, match="format version"):
            load_checkpoint(path)
