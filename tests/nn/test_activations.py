"""Unit and property tests for repro.nn.activations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn.activations import (
    Identity,
    LeakyReLU,
    LogSoftmax,
    ReLU,
    Sigmoid,
    Softplus,
    Tanh,
    get_activation,
)

ELEMENTWISE = [ReLU(), LeakyReLU(0.1), Sigmoid(), Tanh(), Identity(), Softplus()]

finite_arrays = arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(1, 4), st.integers(1, 6)),
    elements=st.floats(-50, 50),
)


class TestForwardValues:
    def test_relu_clamps_negatives(self):
        z = np.array([[-2.0, -0.5, 0.0, 0.5, 2.0]])
        np.testing.assert_array_equal(
            ReLU().forward(z), [[0.0, 0.0, 0.0, 0.5, 2.0]]
        )

    def test_leaky_relu_scales_negatives(self):
        z = np.array([[-10.0, 10.0]])
        np.testing.assert_allclose(
            LeakyReLU(0.01).forward(z), [[-0.1, 10.0]]
        )

    def test_leaky_relu_rejects_negative_alpha(self):
        with pytest.raises(ValueError):
            LeakyReLU(-0.1)

    def test_sigmoid_midpoint(self):
        assert Sigmoid().forward(np.array([0.0]))[0] == pytest.approx(0.5)

    def test_sigmoid_extremes_are_stable(self):
        z = np.array([-1000.0, 1000.0])
        out = Sigmoid().forward(z)
        assert np.all(np.isfinite(out))
        assert out[0] == pytest.approx(0.0, abs=1e-12)
        assert out[1] == pytest.approx(1.0, abs=1e-12)

    def test_tanh_matches_numpy(self):
        z = np.linspace(-3, 3, 7)
        np.testing.assert_allclose(Tanh().forward(z), np.tanh(z))

    def test_identity_passthrough(self):
        z = np.array([[1.0, -2.0]])
        np.testing.assert_array_equal(Identity().forward(z), z)

    def test_softplus_large_input_no_overflow(self):
        out = Softplus().forward(np.array([800.0]))
        assert np.isfinite(out[0])
        assert out[0] == pytest.approx(800.0)


class TestDerivatives:
    @pytest.mark.parametrize("act", ELEMENTWISE, ids=lambda a: a.name)
    def test_derivative_matches_finite_difference(self, act):
        rng = np.random.default_rng(3)
        # Stay away from ReLU's kink for a clean numeric comparison.
        z = rng.uniform(0.2, 2.5, size=(4, 5)) * rng.choice([-1, 1], size=(4, 5))
        eps = 1e-6
        numeric = (act.forward(z + eps) - act.forward(z - eps)) / (2 * eps)
        np.testing.assert_allclose(act.derivative(z), numeric, atol=1e-5)

    def test_relu_derivative_at_zero_is_zero(self):
        assert ReLU().derivative(np.array([0.0]))[0] == 0.0

    def test_log_softmax_derivative_raises(self):
        with pytest.raises(NotImplementedError):
            LogSoftmax().derivative(np.zeros((1, 3)))


class TestLogSoftmax:
    def test_rows_are_log_distributions(self):
        rng = np.random.default_rng(0)
        z = rng.normal(size=(5, 7))
        logp = LogSoftmax().forward(z)
        np.testing.assert_allclose(np.exp(logp).sum(axis=1), 1.0, atol=1e-12)

    def test_shift_invariance(self):
        z = np.array([[1.0, 2.0, 3.0]])
        shifted = z + 100.0
        np.testing.assert_allclose(
            LogSoftmax().forward(z), LogSoftmax().forward(shifted), atol=1e-9
        )

    def test_large_logits_stable(self):
        z = np.array([[1e4, 0.0, -1e4]])
        logp = LogSoftmax().forward(z)
        assert np.all(np.isfinite(logp))
        assert logp[0, 0] == pytest.approx(0.0, abs=1e-9)

    def test_softmax_helper_matches_exp_of_logsoftmax(self):
        rng = np.random.default_rng(1)
        z = rng.normal(size=(3, 4))
        np.testing.assert_allclose(
            LogSoftmax.softmax(z), np.exp(LogSoftmax().forward(z)), atol=1e-12
        )


class TestRegistry:
    @pytest.mark.parametrize(
        "name", ["relu", "leaky_relu", "sigmoid", "tanh", "identity", "softplus", "log_softmax"]
    )
    def test_lookup_by_name(self, name):
        assert get_activation(name).name == name

    def test_instance_passthrough(self):
        act = ReLU()
        assert get_activation(act) is act

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown activation"):
            get_activation("swish9000")


class TestProperties:
    @settings(max_examples=40)
    @given(finite_arrays)
    def test_relu_output_nonnegative(self, z):
        assert (ReLU().forward(z) >= 0).all()

    @settings(max_examples=40)
    @given(finite_arrays)
    def test_sigmoid_bounded(self, z):
        out = Sigmoid().forward(z)
        assert ((out >= 0) & (out <= 1)).all()

    @settings(max_examples=40)
    @given(finite_arrays)
    def test_tanh_bounded(self, z):
        out = Tanh().forward(z)
        assert ((out >= -1) & (out <= 1)).all()

    @settings(max_examples=40)
    @given(finite_arrays)
    def test_log_softmax_nonpositive(self, z):
        assert (LogSoftmax().forward(z) <= 1e-12).all()

    @settings(max_examples=40)
    @given(finite_arrays)
    def test_shapes_preserved(self, z):
        for act in ELEMENTWISE:
            assert act.forward(z).shape == z.shape
            assert act.derivative(z).shape == z.shape
