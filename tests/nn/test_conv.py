"""Unit tests for repro.nn.conv — im2col, conv, pooling gradients."""

import numpy as np
import pytest

from repro.nn.conv import (
    Conv2D,
    ConvFeatureExtractor,
    Flatten,
    MaxPool2D,
    col2im,
    im2col,
)


class TestIm2Col:
    def test_shapes(self, rng):
        x = rng.normal(size=(2, 3, 8, 8))
        cols, (oh, ow) = im2col(x, field=3, stride=1, pad=1)
        assert (oh, ow) == (8, 8)
        assert cols.shape == (2 * 64, 3 * 9)

    def test_stride_two(self, rng):
        x = rng.normal(size=(1, 1, 8, 8))
        cols, (oh, ow) = im2col(x, field=2, stride=2, pad=0)
        assert (oh, ow) == (4, 4)

    def test_identity_kernel_recovers_input(self, rng):
        """1x1 conv via im2col must reproduce the input values."""
        x = rng.normal(size=(1, 1, 4, 4))
        cols, _ = im2col(x, field=1)
        np.testing.assert_allclose(cols.reshape(4, 4), x[0, 0])

    def test_col2im_is_adjoint(self, rng):
        """<im2col(x), y> == <x, col2im(y)> — the adjoint property."""
        x = rng.normal(size=(1, 2, 6, 6))
        cols, _ = im2col(x, field=3, stride=1, pad=1)
        y = rng.normal(size=cols.shape)
        lhs = float((cols * y).sum())
        back = col2im(y, x.shape, field=3, stride=1, pad=1)
        rhs = float((x * back).sum())
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_invalid_geometry(self, rng):
        with pytest.raises(ValueError):
            im2col(rng.normal(size=(1, 1, 2, 2)), field=5)


class TestConv2D:
    def test_output_shape(self, rng):
        conv = Conv2D(3, 8, field=3, pad=1, rng=rng)
        out = conv.forward(rng.normal(size=(2, 3, 16, 16)))
        assert out.shape == (2, 8, 16, 16)

    def test_matches_direct_convolution(self, rng):
        """Compare against a naive nested-loop convolution."""
        conv = Conv2D(2, 3, field=3, pad=0, rng=rng)
        x = rng.normal(size=(1, 2, 5, 5))
        out = conv.forward(x)
        for oc in range(3):
            for i in range(3):
                for j in range(3):
                    patch = x[0, :, i : i + 3, j : j + 3]
                    expected = (patch * conv.kernels[oc]).sum() + conv.bias[oc]
                    assert out[0, oc, i, j] == pytest.approx(expected, rel=1e-10)

    def test_gradients_match_finite_difference(self, rng):
        conv = Conv2D(1, 2, field=3, pad=1, rng=rng)
        x = rng.normal(size=(1, 1, 4, 4))
        grad_out = rng.normal(size=(1, 2, 4, 4))

        def objective():
            return float((conv.forward(x) * grad_out).sum())

        conv.forward(x)
        grad_x = conv.backward(grad_out)
        eps = 1e-6
        # kernel gradient spot checks
        for idx in [(0, 0, 0, 0), (1, 0, 1, 2), (0, 0, 2, 2)]:
            orig = conv.kernels[idx]
            conv.kernels[idx] = orig + eps
            up = objective()
            conv.kernels[idx] = orig - eps
            down = objective()
            conv.kernels[idx] = orig
            assert conv.grad_kernels[idx] == pytest.approx(
                (up - down) / (2 * eps), abs=1e-4
            )
        # input gradient spot checks
        for idx in [(0, 0, 0, 0), (0, 0, 3, 3), (0, 0, 1, 2)]:
            orig = x[idx]
            x[idx] = orig + eps
            up = objective()
            x[idx] = orig - eps
            down = objective()
            x[idx] = orig
            assert grad_x[idx] == pytest.approx((up - down) / (2 * eps), abs=1e-4)

    def test_backward_before_forward_raises(self, rng):
        conv = Conv2D(1, 1, field=3, rng=rng)
        with pytest.raises(RuntimeError):
            conv.backward(np.zeros((1, 1, 2, 2)))

    def test_bias_gradient(self, rng):
        conv = Conv2D(1, 2, field=1, rng=rng)
        x = rng.normal(size=(2, 1, 3, 3))
        grad_out = rng.normal(size=(2, 2, 3, 3))
        conv.forward(x)
        conv.backward(grad_out)
        np.testing.assert_allclose(
            conv.grad_bias, grad_out.sum(axis=(0, 2, 3)), rtol=1e-10
        )


class TestMaxPool:
    def test_values(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = MaxPool2D(2).forward(x)
        np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_backward_routes_to_max(self):
        pool = MaxPool2D(2)
        x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        pool.forward(x)
        g = pool.backward(np.array([[[[10.0]]]]))
        np.testing.assert_array_equal(g, [[[[0, 0], [0, 10.0]]]])

    def test_tie_splits_gradient(self):
        pool = MaxPool2D(2)
        x = np.ones((1, 1, 2, 2))
        pool.forward(x)
        g = pool.backward(np.array([[[[4.0]]]]))
        np.testing.assert_allclose(g, np.ones((1, 1, 2, 2)))

    def test_gradient_mass_conserved(self, rng):
        pool = MaxPool2D(2)
        x = rng.normal(size=(2, 3, 6, 6))
        pool.forward(x)
        grad_out = rng.normal(size=(2, 3, 3, 3))
        g = pool.backward(grad_out)
        assert g.sum() == pytest.approx(grad_out.sum(), rel=1e-10)

    def test_indivisible_input_raises(self, rng):
        with pytest.raises(ValueError):
            MaxPool2D(2).forward(rng.normal(size=(1, 1, 5, 5)))


class TestFlatten:
    def test_round_trip(self, rng):
        f = Flatten()
        x = rng.normal(size=(2, 3, 4, 4))
        flat = f.forward(x)
        assert flat.shape == (2, 48)
        np.testing.assert_array_equal(f.backward(flat), x)


class TestFeatureExtractor:
    def test_feature_dim_matches_forward(self, rng):
        fx = ConvFeatureExtractor(in_channels=3, channels=(4, 8), seed=0)
        x = rng.normal(size=(2, 3, 32, 32))
        feats = fx.forward(x)
        assert feats.shape == (2, fx.feature_dim(32, 32))

    def test_backward_shape(self, rng):
        fx = ConvFeatureExtractor(in_channels=1, channels=(4,), seed=0)
        x = rng.normal(size=(2, 1, 8, 8))
        feats = fx.forward(x)
        g = fx.backward(np.ones_like(feats))
        assert g.shape == x.shape

    def test_relu_masks_applied(self, rng):
        """Features are outputs of ReLU stages — non-negative after pooling
        of non-negative maps."""
        fx = ConvFeatureExtractor(in_channels=1, channels=(4,), seed=0)
        feats = fx.forward(rng.normal(size=(3, 1, 8, 8)))
        assert (feats >= 0).all()


class TestConvClassifier:
    def _data(self, rng, n=60):
        """Images whose class is encoded in a localised bright patch."""
        imgs = rng.normal(scale=0.3, size=(n, 1, 8, 8))
        labels = rng.integers(0, 2, n)
        imgs[labels == 0, 0, :4, :4] += 2.0
        imgs[labels == 1, 0, 4:, 4:] += 2.0
        return imgs, labels

    def test_validation(self, rng):
        from repro.nn.conv import ConvClassifier, ConvFeatureExtractor
        from repro.nn.network import MLP

        fx = ConvFeatureExtractor(1, (4,), seed=0)
        head = MLP([fx.feature_dim(8, 8), 2], seed=1)
        with pytest.raises(ValueError):
            ConvClassifier(fx, head, lr=0.0)
        with pytest.raises(ValueError):
            ConvClassifier(fx, head).fit(np.zeros((2, 1, 8, 8)),
                                         np.zeros(2, dtype=int), epochs=0)

    def test_joint_training_reduces_loss(self, rng):
        from repro.nn.conv import ConvClassifier, ConvFeatureExtractor
        from repro.nn.network import MLP

        imgs, labels = self._data(rng)
        fx = ConvFeatureExtractor(1, (4,), seed=0)
        head = MLP([fx.feature_dim(8, 8), 16, 2], seed=1)
        model = ConvClassifier(fx, head, lr=5e-2)
        losses = model.fit(imgs, labels, epochs=6, batch_size=10, seed=2)
        assert losses[-1] < losses[0]

    def test_learns_localised_pattern(self, rng):
        from repro.nn.conv import ConvClassifier, ConvFeatureExtractor
        from repro.nn.network import MLP

        imgs, labels = self._data(rng, n=80)
        fx = ConvFeatureExtractor(1, (4,), seed=0)
        head = MLP([fx.feature_dim(8, 8), 16, 2], seed=1)
        model = ConvClassifier(fx, head, lr=5e-2)
        model.fit(imgs, labels, epochs=8, batch_size=10, seed=2)
        test_imgs, test_labels = self._data(np.random.default_rng(9), n=40)
        acc = (model.predict(test_imgs) == test_labels).mean()
        assert acc > 0.8

    def test_features_shape(self, rng):
        from repro.nn.conv import ConvClassifier, ConvFeatureExtractor
        from repro.nn.network import MLP

        fx = ConvFeatureExtractor(1, (4,), seed=0)
        head = MLP([fx.feature_dim(8, 8), 2], seed=1)
        model = ConvClassifier(fx, head)
        feats = model.features(rng.normal(size=(3, 1, 8, 8)))
        assert feats.shape == (3, fx.feature_dim(8, 8))
