"""Unit tests for repro.nn.network.MLP, including full gradient checks."""

import numpy as np
import pytest

from repro.nn.losses import NLLLoss
from repro.nn.network import MLP


class TestConstruction:
    def test_depth_counts_hidden_layers(self):
        assert MLP([10, 5, 5, 3], seed=0).depth == 2
        assert MLP([10, 3], seed=0).depth == 0

    def test_rejects_short_architecture(self):
        with pytest.raises(ValueError):
            MLP([10])

    def test_rejects_nonpositive_sizes(self):
        with pytest.raises(ValueError):
            MLP([10, 0, 3])

    def test_num_params(self):
        net = MLP([4, 3, 2], seed=0)
        assert net.num_params() == (4 * 3 + 3) + (3 * 2 + 2)

    def test_seed_reproducibility(self):
        a = MLP([6, 4, 2], seed=5)
        b = MLP([6, 4, 2], seed=5)
        for la, lb in zip(a.layers, b.layers):
            np.testing.assert_array_equal(la.W, lb.W)

    def test_clone_architecture(self):
        net = MLP([6, 4, 2], seed=5)
        clone = net.clone_architecture(seed=6)
        assert clone.layer_sizes == net.layer_sizes
        assert not np.array_equal(clone.layers[0].W, net.layers[0].W)


class TestForward:
    def test_output_is_log_distribution(self, rng):
        net = MLP([8, 6, 4], seed=0)
        x = rng.normal(size=(5, 8))
        out = net.forward(x).output
        np.testing.assert_allclose(np.exp(out).sum(axis=1), 1.0, atol=1e-12)

    def test_cache_shapes(self, rng):
        net = MLP([8, 6, 5, 4], seed=0)
        x = rng.normal(size=(3, 8))
        cache = net.forward(x)
        assert len(cache.activations) == 3  # x, a1, a2
        assert len(cache.zs) == 3
        assert cache.activations[1].shape == (3, 6)
        assert cache.zs[-1].shape == (3, 4)

    def test_single_sample_promoted_to_batch(self, rng):
        net = MLP([8, 4], seed=0)
        out = net.forward(rng.normal(size=8)).output
        assert out.shape == (1, 4)

    def test_hidden_activations_nonnegative_with_relu(self, rng):
        net = MLP([8, 6, 4], seed=0)
        cache = net.forward(rng.normal(size=(4, 8)))
        assert (cache.activations[1] >= 0).all()


class TestBackward:
    def test_gradients_match_finite_difference(self, rng):
        """Full end-to-end gradient check of the exact backward pass."""
        net = MLP([5, 4, 3], seed=1)
        x = rng.normal(size=(3, 5))
        y = np.array([0, 2, 1])
        grads = net.backward(net.forward(x), y)
        eps = 1e-6
        for layer_idx, layer in enumerate(net.layers):
            g_w, g_b = grads[layer_idx]
            for i in range(layer.W.shape[0]):
                for j in range(layer.W.shape[1]):
                    orig = layer.W[i, j]
                    layer.W[i, j] = orig + eps
                    up = net.loss(x, y)
                    layer.W[i, j] = orig - eps
                    down = net.loss(x, y)
                    layer.W[i, j] = orig
                    assert g_w[i, j] == pytest.approx(
                        (up - down) / (2 * eps), abs=1e-5
                    ), f"W[{layer_idx}][{i},{j}]"
            for j in range(layer.b.shape[0]):
                orig = layer.b[j]
                layer.b[j] = orig + eps
                up = net.loss(x, y)
                layer.b[j] = orig - eps
                down = net.loss(x, y)
                layer.b[j] = orig
                assert g_b[j] == pytest.approx((up - down) / (2 * eps), abs=1e-5)

    def test_gradient_shapes(self, rng):
        net = MLP([5, 7, 6, 2], seed=0)
        grads = net.backward(net.forward(rng.normal(size=(2, 5))), np.array([0, 1]))
        assert len(grads) == 3
        for (g_w, g_b), layer in zip(grads, net.layers):
            assert g_w.shape == layer.W.shape
            assert g_b.shape == layer.b.shape

    def test_non_logsoftmax_head_rejected(self, rng):
        net = MLP([4, 3], output_activation="identity", seed=0)
        cache = net.forward(rng.normal(size=(1, 4)))
        with pytest.raises(NotImplementedError):
            net.backward(cache, np.array([0]))


class TestInference:
    def test_predict_shape_and_range(self, rng):
        net = MLP([8, 4], seed=0)
        preds = net.predict(rng.normal(size=(10, 8)))
        assert preds.shape == (10,)
        assert ((preds >= 0) & (preds < 4)).all()

    def test_loss_positive(self, rng):
        net = MLP([8, 4], seed=0)
        assert net.loss(rng.normal(size=(5, 8)), rng.integers(0, 4, 5)) > 0

    def test_gradient_descent_reduces_loss(self, rng):
        """A few exact GD steps must reduce the training loss."""
        net = MLP([6, 8, 3], seed=2)
        x = rng.normal(size=(20, 6))
        y = rng.integers(0, 3, size=20)
        before = net.loss(x, y)
        for _ in range(30):
            grads = net.backward(net.forward(x), y)
            for (g_w, g_b), layer in zip(grads, net.layers):
                layer.W -= 0.5 * g_w
                layer.b -= 0.5 * g_b
        assert net.loss(x, y) < before
