"""Allocation regression for the scratch-pooled sampled gather.

The MC trainer's ``(a[:, idx] * scales) @ b[idx, :]`` historically
allocated two fresh ``(m, keep)`` intermediates per call.  The reference
backend now stages the gather through a :class:`ScratchPool` buffer; the
pool's hit/miss statistics are the regression test — at steady state a
repeated shape must reuse one buffer, not allocate per call.
"""

import numpy as np
import pytest

from repro.backend import ReferenceBackend, ScratchPool
from repro.core import make_trainer
from repro.nn.network import MLP


def test_scratch_pool_reuses_buffers():
    pool = ScratchPool()
    first = pool.get("x", (4, 8))
    again = pool.get("x", (4, 8))
    assert again is first
    assert (pool.misses, pool.hits) == (1, 1)
    # A different shape, dtype or slot is a different buffer.
    assert pool.get("x", (4, 9)) is not first
    assert pool.get("x", (4, 8), dtype=np.float32) is not first
    assert pool.get("y", (4, 8)) is not first
    assert pool.nbytes > 0
    pool.clear()
    assert (pool.misses, pool.hits, pool.nbytes) == (0, 0, 0)


def test_sampled_matmul_allocates_once_for_a_repeated_shape(rng):
    backend = ReferenceBackend()
    a = rng.normal(size=(20, 64))
    b = rng.normal(size=(64, 32))
    idx = np.sort(rng.choice(64, size=10, replace=False))
    scales = rng.uniform(1.0, 3.0, size=idx.size)
    expected = (a[:, idx] * scales) @ b[idx, :]
    for _ in range(100):
        out = backend.sampled_matmul(a, b, idx, scales)
        assert np.array_equal(out, expected)
    # One miss fills the buffer; the other 99 calls reuse it.
    assert backend.scratch.misses == 1
    assert backend.scratch.hits == 99


def test_sampled_matmul_returns_fresh_output_arrays(rng):
    """Only the gather is pooled — outputs must never alias each other."""
    backend = ReferenceBackend()
    a = rng.normal(size=(6, 16))
    b = rng.normal(size=(16, 5))
    idx = np.arange(4)
    scales = np.full(4, 2.0)
    first = backend.sampled_matmul(a, b, idx, scales)
    kept = first.copy()
    backend.sampled_matmul(2.0 * a, b, idx, scales)
    assert np.array_equal(first, kept)


def test_non_float64_inputs_fall_back_to_the_canonical_path(rng):
    backend = ReferenceBackend()
    a = rng.normal(size=(6, 16)).astype(np.float32)
    b = rng.normal(size=(16, 5)).astype(np.float32)
    idx = np.arange(4)
    scales = np.full(4, 2.0, dtype=np.float32)
    out = backend.sampled_matmul(a, b, idx, scales)
    assert np.array_equal(out, (a[:, idx] * scales) @ b[idx, :])
    assert backend.scratch.misses == 0


@pytest.mark.parametrize("k", [5, 10])
def test_mc_trainer_reuses_the_gather_buffer(k, tiny_dataset):
    backend = ReferenceBackend()
    net = MLP([64, 32, 32, 3], seed=123)
    trainer = make_trainer("mc", net, seed=123, k=k, compute_backend=backend)
    trainer.fit(
        tiny_dataset.x_train, tiny_dataset.y_train, epochs=2, batch_size=20
    )
    # The Bernoulli draw varies the keep count, so a handful of shapes
    # get buffers — but the bulk of the calls must be steady-state hits.
    assert backend.scratch.hits > backend.scratch.misses
