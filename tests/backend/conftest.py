"""Shared machinery for the compute-backend tests.

The kernel property tests work capture-replay style: every trainer runs
once on the tiny dataset with a recording reference backend that stores
the first few calls to each kernel (operands deep-copied, since layers
mutate their weights in place).  The captured calls are then replayed
against every other backend and compared to the recorded reference
output — bitwise for the float64-preserving backends, within the
documented tolerance for the float32 fast backend.
"""

import copy

import numpy as np
import pytest

from repro.backend import KERNEL_NAMES, ReferenceBackend
from repro.core import make_trainer
from repro.nn.conv import Conv2D
from repro.nn.network import MLP

TRAINER_NAMES = ["standard", "dropout", "adaptive_dropout", "alsh", "mc", "topk"]

#: fixed-seed recipe (matches tests/obs/conftest.py minus one epoch).
SEED = 123
LAYER_SIZES = [64, 32, 32, 3]
BATCH_SIZE = 20

#: calls captured per kernel per trainer — enough to cover the distinct
#: shapes each trainer produces without storing the whole run.
CAPTURE_LIMIT = 6


class CapturingBackend(ReferenceBackend):
    """Reference backend that records its first few calls per kernel."""

    name = "capturing"

    def __init__(self, limit: int = CAPTURE_LIMIT):
        super().__init__()
        self.calls = []
        self._counts = {}
        self._limit = limit
        for kernel in KERNEL_NAMES:
            setattr(self, kernel, self._wrap(kernel))

    def _wrap(self, kernel):
        inner = getattr(super(), kernel)

        def _copy(value):
            if isinstance(value, np.ndarray):
                # order="A" keeps F-contiguous operands (e.g. the W.T
                # passed by backprop_delta) F-contiguous, so the replay
                # takes the same BLAS code path bitwise.
                return value.copy(order="A")
            return copy.deepcopy(value)

        def wrapped(*args, **kwargs):
            out = inner(*args, **kwargs)
            if self._counts.get(kernel, 0) < self._limit:
                self._counts[kernel] = self._counts.get(kernel, 0) + 1
                self.calls.append(
                    {
                        "kernel": kernel,
                        "args": [_copy(a) for a in args],
                        "kwargs": {k: _copy(v) for k, v in kwargs.items()},
                        "expected": np.asarray(out).copy(),
                    }
                )
            return out

        return wrapped


def replay(call, backend) -> np.ndarray:
    """Re-run one captured call on another backend."""
    return np.asarray(
        getattr(backend, call["kernel"])(*call["args"], **call["kwargs"])
    )


@pytest.fixture(scope="session")
def captured_calls(tiny_dataset):
    """Per-trainer captured kernel calls from one-epoch fixed-seed runs.

    A conv forward/backward pass rides along under the ``conv`` key so
    the im2col/col2im and conv GEMM kernels are captured too (no trainer
    exercises them).
    """
    out = {}
    for name in TRAINER_NAMES:
        backend = CapturingBackend()
        net = MLP(LAYER_SIZES, seed=SEED)
        trainer = make_trainer(name, net, seed=SEED, compute_backend=backend)
        trainer.fit(
            tiny_dataset.x_train,
            tiny_dataset.y_train,
            epochs=1,
            batch_size=BATCH_SIZE,
        )
        out[name] = backend.calls

    from repro.backend import use_backend

    conv_backend = CapturingBackend()
    with use_backend(conv_backend):
        rng = np.random.default_rng(SEED)
        conv = Conv2D(2, 4, field=3, stride=1, pad=1, rng=rng)
        x = rng.normal(size=(5, 2, 8, 8))
        z = conv.forward(x)
        conv.backward(rng.normal(size=z.shape))
    out["conv"] = conv_backend.calls

    # No trainer drives the row-sampled forward or the DWTA gather, so
    # capture them from their real call sites directly.
    extras = CapturingBackend()
    with use_backend(extras):
        from repro.lsh.dwta import DensifiedWTA, FusedDWTA

        rng = np.random.default_rng(SEED)
        layer = MLP(LAYER_SIZES, seed=SEED).layers[0]
        a_prev = rng.normal(size=(BATCH_SIZE, LAYER_SIZES[0]))
        rows = np.sort(rng.choice(LAYER_SIZES[0], size=12, replace=False))
        layer.forward_rows(a_prev, rows, scale=rng.uniform(1.0, 2.0, 12))
        layer.forward_rows(a_prev, rows)
        fns = [
            DensifiedWTA(LAYER_SIZES[0], n_bits=4, rng=rng) for _ in range(2)
        ]
        FusedDWTA(fns).hash_all(a_prev)
    out["extras"] = extras.calls
    return out
