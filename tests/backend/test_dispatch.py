"""Backend selection: registry, env var, default override, scoping."""

import threading

import pytest

import repro.backend as backend_mod
from repro.backend import (
    ENV_VAR,
    ComputeBackend,
    FastBackend,
    ReferenceBackend,
    ThreadedBackend,
    active_backend,
    available_backends,
    default_backend_name,
    get_backend,
    register_backend,
    resolve_backend,
    set_default_backend,
    use_backend,
)


@pytest.fixture(autouse=True)
def _clean_default(monkeypatch):
    """Every test starts from the env-var-free, override-free default."""
    monkeypatch.delenv(ENV_VAR, raising=False)
    previous = set_default_backend(None)
    yield
    set_default_backend(previous)


def test_builtins_are_registered():
    assert available_backends() == ["fast", "reference", "threaded"]


def test_get_backend_returns_shared_instances():
    assert get_backend("reference") is get_backend("reference")
    assert isinstance(get_backend("reference"), ReferenceBackend)
    assert isinstance(get_backend("fast"), FastBackend)
    assert isinstance(get_backend("threaded"), ThreadedBackend)


def test_unknown_name_lists_available():
    with pytest.raises(ValueError, match="nope.*fast, reference, threaded"):
        get_backend("nope")


def test_default_is_reference():
    assert default_backend_name() == "reference"
    assert active_backend() is get_backend("reference")


def test_env_var_selects_default(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "fast")
    assert default_backend_name() == "fast"
    assert active_backend() is get_backend("fast")


def test_env_var_unknown_name_fails(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "gpu")
    with pytest.raises(ValueError, match="REPRO_BACKEND"):
        default_backend_name()


def test_set_default_overrides_env(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "fast")
    assert set_default_backend("threaded") is None
    assert default_backend_name() == "threaded"
    # Clearing restores the env-var lookup and returns the old override.
    assert set_default_backend(None) == "threaded"
    assert default_backend_name() == "fast"


def test_set_default_rejects_unknown():
    with pytest.raises(ValueError, match="unknown compute backend"):
        set_default_backend("nope")


def test_use_backend_nests_and_restores():
    assert active_backend().name == "reference"
    with use_backend("fast") as fast:
        assert active_backend() is fast
        with use_backend("threaded"):
            assert active_backend().name == "threaded"
        assert active_backend() is fast
    assert active_backend().name == "reference"


def test_use_backend_accepts_instances_and_rejects_none():
    mine = ReferenceBackend()
    with use_backend(mine):
        assert active_backend() is mine
    with pytest.raises(ValueError):
        with use_backend(None):
            pass


def test_use_backend_is_thread_local():
    seen = {}

    def worker():
        seen["name"] = active_backend().name

    with use_backend("fast"):
        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
    # The worker thread never saw the main thread's scope.
    assert seen["name"] == "reference"


def test_resolve_backend_forms():
    assert resolve_backend(None) is None
    assert resolve_backend("fast") is get_backend("fast")
    mine = ReferenceBackend()
    assert resolve_backend(mine) is mine


def test_register_backend_round_trip():
    class Custom(ComputeBackend):
        name = "custom-test"

    register_backend("custom-test", Custom)
    try:
        assert "custom-test" in available_backends()
        assert isinstance(get_backend("custom-test"), Custom)
        with use_backend("custom-test"):
            assert active_backend().name == "custom-test"
    finally:
        backend_mod._REGISTRY.pop("custom-test", None)
        backend_mod._instances.pop("custom-test", None)
