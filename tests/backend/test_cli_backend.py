"""CLI surface of the backend layer: --backend flags and backend-bench."""

import json

import pytest

from repro.backend.bench import check_speedups, default_shapes, shape_key
from repro.cli import main


def test_sweep_records_backend_in_task_records(tmp_path, capsys):
    store = tmp_path / "sweep.jsonl"
    rc = main(
        [
            "sweep",
            "--methods", "mc", "standard",
            "--depths", "1",
            "--epochs", "1",
            "--data-scale", "0.01",
            "--backend", "fast",
            "--store", str(store),
        ]
    )
    assert rc == 0
    records = [json.loads(line) for line in store.read_text().splitlines()]
    tasks = [r for r in records if r.get("status") == "ok"]
    assert len(tasks) == 2
    for record in tasks:
        assert record["result"]["payload"]["config"]["backend"] == "fast"
        assert "('backend', 'fast')" in record["key"]


def test_trace_report_backend_flag_lands_in_counters(capsys):
    rc = main(
        [
            "trace-report",
            "--method", "mc",
            "--epochs", "1",
            "--data-scale", "0.01",
            "--backend", "fast",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "backend.used.fast" in out
    assert "kernel.flops.sampled_matmul" in out


def test_run_rejects_unknown_backend(capsys):
    with pytest.raises(SystemExit):
        main(["run", "--backend", "gpu"])
    assert "--backend" in capsys.readouterr().err


def test_backend_bench_quick_writes_trajectory(tmp_path, capsys):
    out = tmp_path / "BENCH_backend.json"
    rc = main(
        ["backend-bench", "--quick", "--repeats", "1", "--out", str(out)]
    )
    assert rc == 0
    payload = json.loads(out.read_text())
    assert payload["bench"] == "compute_backend"
    assert payload["quick"] is True
    gated = [r for r in payload["records"] if r.get("gate")]
    assert len(gated) == 2
    for record in payload["records"]:
        assert record["fast_close"] is True
        assert record["threaded_bitwise"] is True
        assert set(record["speedup"]) == {"fast", "threaded"}


def test_bench_gate_flags_slow_fast_backend():
    record = dict(default_shapes(quick=True)[0])
    record.update(
        {
            "reference": 1.0,
            "fast": 2.0,
            "threaded": 1.0,
            "speedup": {"fast": 0.5, "threaded": 1.0},
            "fast_close": True,
            "threaded_bitwise": True,
        }
    )
    failures = check_speedups([record], min_speedup=1.0)
    assert len(failures) == 1
    assert shape_key(record) in failures[0]
    # An ungated shape may lose without failing the gate.
    record["gate"] = False
    assert check_speedups([record], min_speedup=1.0) == []
    # Divergence fails regardless of gating.
    record["fast_close"] = False
    assert any("tolerance" in f for f in check_speedups([record]))
