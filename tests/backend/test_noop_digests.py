"""Explicitly selecting the reference backend is still a bitwise no-op.

The obs suite pins the trainers' weight digests against the
pre-instrumentation bytes under the *default* dispatch path; these tests
pin the two explicit selection paths — the per-trainer
``compute_backend=`` argument and a ``use_backend`` scope — against the
same digests, so routing through the backend layer provably never
changes what is computed.
"""

import pytest

from obs.conftest import (
    BATCH_SIZE,
    EPOCHS,
    LAYER_SIZES,
    SEED,
    TRAINER_NAMES,
    weights_digest,
)
from obs.test_noop import PRE_INSTRUMENTATION_DIGESTS
from repro.backend import use_backend
from repro.core import make_trainer
from repro.nn.network import MLP


def _fit(name, dataset, **trainer_kwargs):
    net = MLP(LAYER_SIZES, seed=SEED)
    trainer = make_trainer(name, net, seed=SEED, **trainer_kwargs)
    trainer.fit(
        dataset.x_train,
        dataset.y_train,
        epochs=EPOCHS,
        batch_size=BATCH_SIZE,
        x_val=dataset.x_val,
        y_val=dataset.y_val,
    )
    return weights_digest(net)


@pytest.mark.parametrize("name", TRAINER_NAMES)
def test_explicit_reference_backend_reproduces_digests(name, tiny_dataset):
    digest = _fit(name, tiny_dataset, compute_backend="reference")
    assert digest == PRE_INSTRUMENTATION_DIGESTS[name]


def test_use_backend_scope_reproduces_digest(tiny_dataset):
    with use_backend("reference"):
        digest = _fit("mc", tiny_dataset)
    assert digest == PRE_INSTRUMENTATION_DIGESTS["mc"]
