"""Kernel property tests: every backend against the reference results.

Two layers of evidence:

* the reference backend itself is pinned against the raw NumPy
  expressions it replaced (bitwise);
* calls captured from real one-epoch runs of all six trainers (plus a
  conv pass) are replayed on every other backend — float64-preserving
  backends must match bitwise, the float32 fast backend within its
  documented tolerance.
"""

import numpy as np
import pytest

from repro.backend import (
    FAST_RTOL,
    FastBackend,
    ReferenceBackend,
    ThreadedBackend,
)

from .conftest import TRAINER_NAMES, replay

#: absolute slack for float32 replays — float32 rounding of near-zero
#: entries (gradients late in training) needs more than FAST_ATOL.
F32_ATOL = 1e-3

CAPTURE_KEYS = TRAINER_NAMES + ["conv", "extras"]


@pytest.fixture(scope="module")
def reference():
    return ReferenceBackend()


# ----------------------------------------------------------------------
# reference vs the raw historical expressions
# ----------------------------------------------------------------------


def test_reference_dense_kernels_bitwise(rng, reference):
    a = rng.normal(size=(20, 64))
    w = rng.normal(size=(64, 32))
    bias = rng.normal(size=32)
    assert np.array_equal(reference.matmul(a, w), a @ w)
    assert np.array_equal(reference.matmul_add_bias(a, w, bias), a @ w + bias)


def test_reference_subset_kernels_bitwise(rng, reference):
    a = rng.normal(size=(20, 64))
    w = rng.normal(size=(64, 32))
    bias = rng.normal(size=32)
    cols = np.array([1, 5, 17, 30])
    rows = np.array([0, 3, 33, 63])
    scale = rng.uniform(1.0, 2.0, size=rows.size)
    delta = rng.normal(size=(20, cols.size))
    assert np.array_equal(
        reference.matmul_cols(a, w, bias, cols), a @ w[:, cols] + bias[cols]
    )
    assert np.array_equal(
        reference.matmul_cols(a, w, None, cols), a @ w[:, cols]
    )
    assert np.array_equal(
        reference.matmul_rows(a, w, bias, rows, scale),
        (a[:, rows] * scale) @ w[rows, :] + bias,
    )
    assert np.array_equal(
        reference.backprop_cols(delta, w, cols), delta @ w[:, cols].T
    )
    assert np.array_equal(
        reference.backprop_cols(delta[0], w, cols), w[:, cols] @ delta[0]
    )
    assert np.array_equal(reference.grad_cols(a, delta), a.T @ delta)
    assert np.array_equal(
        reference.grad_cols(a[0], delta[0]), np.outer(a[0], delta[0])
    )


def test_reference_sampled_matmul_bitwise(rng, reference):
    a = rng.normal(size=(20, 64))
    b = rng.normal(size=(64, 32))
    idx = np.sort(rng.choice(64, size=10, replace=False))
    scales = rng.uniform(1.0, 3.0, size=idx.size)
    expected = (a[:, idx] * scales) @ b[idx, :]
    assert np.array_equal(reference.sampled_matmul(a, b, idx, scales), expected)
    # Empty draw: the MC estimator contributes a zero matrix.
    empty = reference.sampled_matmul(a, b, np.array([], dtype=int), scales[:0])
    assert empty.shape == (20, 32)
    assert not empty.any()


def test_reference_gather_cols_matches_fancy_indexing(rng, reference):
    a = rng.normal(size=(20, 64))
    flat = np.array([3, 9, 9, 41])
    binned = rng.integers(0, 64, size=(8, 6))
    assert np.array_equal(reference.gather_cols(a, flat), a[:, flat])
    assert np.array_equal(reference.gather_cols(a, binned), a[:, binned])


# ----------------------------------------------------------------------
# captured trainer calls replayed on every backend
# ----------------------------------------------------------------------


def test_capture_covers_the_gemm_kernels(captured_calls):
    kernels = {c["kernel"] for calls in captured_calls.values() for c in calls}
    assert {
        "matmul",
        "matmul_add_bias",
        "matmul_cols",
        "matmul_rows",
        "backprop_cols",
        "grad_cols",
        "sampled_matmul",
        "gather_cols",
        "apply_activation",
        "im2col",
        "col2im",
    } <= kernels


@pytest.mark.parametrize("source", CAPTURE_KEYS)
def test_threaded_replays_bitwise(source, captured_calls):
    backend = ThreadedBackend()
    try:
        for call in captured_calls[source]:
            out = replay(call, backend)
            assert np.array_equal(out, call["expected"]), call["kernel"]
    finally:
        backend.close()


@pytest.mark.parametrize("source", CAPTURE_KEYS)
def test_fast_float64_replays_bitwise(source, captured_calls):
    backend = FastBackend(precision="float64")
    for call in captured_calls[source]:
        out = replay(call, backend)
        assert np.array_equal(out, call["expected"]), call["kernel"]


@pytest.mark.parametrize("source", CAPTURE_KEYS)
def test_fast_float32_replays_within_tolerance(source, captured_calls):
    backend = FastBackend()
    for call in captured_calls[source]:
        out = replay(call, backend)
        assert out.shape == call["expected"].shape
        assert np.allclose(
            out, call["expected"], rtol=FAST_RTOL, atol=F32_ATOL
        ), call["kernel"]


@pytest.mark.parametrize("source", CAPTURE_KEYS)
def test_fast_float64_accumulation_within_tolerance(source, captured_calls):
    backend = FastBackend(accumulate="float64")
    for call in captured_calls[source]:
        out = replay(call, backend)
        assert np.allclose(
            out, call["expected"], rtol=FAST_RTOL, atol=F32_ATOL
        ), call["kernel"]


# ----------------------------------------------------------------------
# paper-scale shapes (big enough to take the staged/sharded code paths)
# ----------------------------------------------------------------------


def test_threaded_shards_bitwise_at_scale(rng):
    # macs and row count above the sharding thresholds.
    a = rng.normal(size=(512, 700))
    w = rng.normal(size=(700, 600))
    bias = rng.normal(size=600)
    backend = ThreadedBackend(max_workers=3, tile_rows=64)
    try:
        assert np.array_equal(backend.matmul(a, w), a @ w)
        assert np.array_equal(
            backend.matmul_add_bias(a, w, bias), a @ w + bias
        )
    finally:
        backend.close()


def test_fast_float32_paths_within_tolerance_at_scale(rng):
    a = rng.normal(size=(64, 600))
    w = rng.normal(size=(600, 200))
    bias = rng.normal(size=200)
    idx = np.sort(rng.choice(600, size=80, replace=False))
    scales = rng.uniform(1.0, 3.0, size=idx.size)
    cols = np.sort(rng.choice(200, size=120, replace=False))
    delta = rng.normal(size=(64, cols.size))
    ref = ReferenceBackend()
    for accumulate in (None, "float64"):
        fast = FastBackend(accumulate=accumulate)
        pairs = [
            (fast.matmul(a, w), ref.matmul(a, w)),
            (fast.matmul_add_bias(a, w, bias), ref.matmul_add_bias(a, w, bias)),
            (fast.matmul_cols(a, w, bias, cols),
             ref.matmul_cols(a, w, bias, cols)),
            (fast.matmul_rows(a, w, bias, idx, scales),
             ref.matmul_rows(a, w, bias, idx, scales)),
            (fast.backprop_cols(delta, w, cols),
             ref.backprop_cols(delta, w, cols)),
            (fast.grad_cols(a, delta), ref.grad_cols(a, delta)),
            (fast.sampled_matmul(a, w, idx, scales),
             ref.sampled_matmul(a, w, idx, scales)),
        ]
        for got, expected in pairs:
            assert got.dtype == np.float64
            assert np.allclose(got, expected, rtol=FAST_RTOL, atol=F32_ATOL)


def test_fast_rejects_bad_modes():
    with pytest.raises(ValueError):
        FastBackend(precision="float16")
    with pytest.raises(ValueError):
        FastBackend(accumulate="float128")
