"""InstrumentedBackend: per-kernel timings, FLOP counters, traced runs."""

import numpy as np
import pytest

from repro.backend import (
    FastBackend,
    InstrumentedBackend,
    ReferenceBackend,
)
from repro.core import make_trainer
from repro.nn.network import MLP
from repro.obs import InMemoryRecorder
from repro.obs.counters import BACKEND_USED_PREFIX, KERNEL_FLOPS_PREFIX


@pytest.fixture
def instrumented():
    recorder = InMemoryRecorder()
    return InstrumentedBackend(ReferenceBackend(), recorder), recorder


def test_gemm_kernels_record_time_and_flops(instrumented, rng):
    backend, recorder = instrumented
    a = rng.normal(size=(20, 64))
    w = rng.normal(size=(64, 32))
    backend.matmul(a, w)
    snap = recorder.snapshot()
    assert snap["counters"][KERNEL_FLOPS_PREFIX + "matmul"] == 2 * 20 * 64 * 32
    assert snap["timings"]["kernel.matmul"]["count"] == 1


def test_subset_kernels_model_only_the_subset_flops(instrumented, rng):
    backend, recorder = instrumented
    a = rng.normal(size=(20, 64))
    w = rng.normal(size=(64, 32))
    bias = rng.normal(size=32)
    cols = np.arange(8)
    idx = np.arange(10)
    scales = np.ones(10)
    backend.matmul_cols(a, w, bias, cols)
    backend.sampled_matmul(a, w, idx, scales)
    counters = recorder.snapshot()["counters"]
    assert counters[KERNEL_FLOPS_PREFIX + "matmul_cols"] == 2 * 20 * 64 * 8
    assert counters[KERNEL_FLOPS_PREFIX + "sampled_matmul"] == 2 * 20 * 10 * 32
    assert KERNEL_FLOPS_PREFIX + "matmul" not in counters


def test_elementwise_kernels_are_timed_but_not_flop_counted(instrumented, rng):
    backend, recorder = instrumented
    a = rng.normal(size=(20, 64))
    backend.gather_cols(a, np.arange(5))
    snap = recorder.snapshot()
    assert snap["timings"]["kernel.gather_cols"]["count"] == 1
    assert KERNEL_FLOPS_PREFIX + "gather_cols" not in snap["counters"]


def test_wrapper_preserves_results_name_and_scratch(rng):
    inner = ReferenceBackend()
    backend = InstrumentedBackend(inner, InMemoryRecorder())
    assert backend.name == "reference"
    assert backend.scratch is inner.scratch
    a = rng.normal(size=(4, 6))
    b = rng.normal(size=(6, 3))
    assert np.array_equal(backend.matmul(a, b), a @ b)


def test_traced_run_attributes_backend_and_kernels(tiny_dataset):
    recorder = InMemoryRecorder()
    net = MLP([64, 32, 32, 3], seed=123)
    trainer = make_trainer(
        "mc", net, seed=123, recorder=recorder, compute_backend="fast"
    )
    trainer.fit(
        tiny_dataset.x_train, tiny_dataset.y_train, epochs=1, batch_size=20
    )
    snap = recorder.snapshot()
    assert snap["counters"][BACKEND_USED_PREFIX + "fast"] == 1
    assert snap["counters"][KERNEL_FLOPS_PREFIX + "sampled_matmul"] > 0
    assert any(k.startswith("kernel.") for k in snap["timings"])
    # The trainer pinned an instrumented wrapper around the fast backend.
    assert isinstance(trainer.compute_backend, InstrumentedBackend)
    assert isinstance(trainer.compute_backend.inner, FastBackend)
