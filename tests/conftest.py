"""Shared fixtures: small deterministic datasets and networks."""

import numpy as np
import pytest

from repro.data.synthetic import SyntheticSpec
from repro.nn.network import MLP


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite the golden trace files from the current run "
        "instead of asserting against them",
    )


@pytest.fixture(scope="session")
def update_goldens(request):
    """True when the run should rewrite golden files."""
    return request.config.getoption("--update-goldens")


@pytest.fixture(scope="session")
def tiny_dataset():
    """A small, easy 3-class image dataset (fast to train on)."""
    spec = SyntheticSpec(
        name="tiny",
        shape=(1, 8, 8),
        n_classes=3,
        n_train=240,
        n_test=90,
        n_val=30,
        noise=1.0,
        class_spread=1.5,
        max_shift=0,
    )
    return spec.generate(seed=7)


@pytest.fixture(scope="session")
def hard_dataset():
    """A harder 5-class dataset where methods separate."""
    spec = SyntheticSpec(
        name="hard",
        shape=(1, 12, 12),
        n_classes=5,
        n_train=400,
        n_test=150,
        n_val=50,
        noise=3.0,
        class_spread=1.0,
        max_shift=1,
    )
    return spec.generate(seed=11)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture
def small_net():
    """A 2-hidden-layer MLP sized for the tiny dataset."""
    return MLP([64, 32, 32, 3], seed=0)
