"""Tests for the trainer registry."""

import pytest

from repro.core.registry import TRAINERS, make_trainer, trainer_names
from repro.core.standard import StandardTrainer
from repro.nn.network import MLP


def test_registered_methods():
    """The paper's five methods plus the top-k oracle ablation trainer."""
    assert trainer_names() == [
        "standard",
        "dropout",
        "adaptive_dropout",
        "alsh",
        "mc",
        "topk",
    ]


@pytest.mark.parametrize("name", list(TRAINERS))
def test_factory_builds_each(name):
    net = MLP([10, 16, 3], seed=0)
    trainer = make_trainer(name, net, lr=1e-3, seed=1)
    assert trainer.name == name
    assert trainer.net is net


@pytest.mark.parametrize(
    "alias,canonical",
    [
        ("alsh_approx", "alsh"),
        ("alsh-approx", "alsh"),
        ("mc_approx", "mc"),
        ("mc-approx", "mc"),
        ("adaptive-dropout", "adaptive_dropout"),
        ("topk_approx", "topk"),
    ],
)
def test_aliases(alias, canonical):
    net = MLP([10, 8, 3], seed=0)
    assert make_trainer(alias, net).name == canonical


def test_kwargs_forwarded():
    net = MLP([10, 8, 3], seed=0)
    trainer = make_trainer("dropout", net, keep_prob=0.42)
    assert trainer.keep_prob == 0.42


def test_unknown_method():
    with pytest.raises(ValueError, match="unknown trainer"):
        make_trainer("slide", MLP([4, 3, 2], seed=0))


def test_standard_is_default_reference():
    assert TRAINERS["standard"] is StandardTrainer
