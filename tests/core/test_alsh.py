"""Tests for the ALSH-APPROX trainer."""

import numpy as np
import pytest

from repro.core.alsh_approx import ALSHApproxTrainer
from repro.lsh.rebuild import RebuildScheduler
from repro.nn.network import MLP


def make_trainer_and_net(depth=2, width=40, seed=0, **kwargs):
    net = MLP([20] + [width] * depth + [4], seed=seed)
    trainer = ALSHApproxTrainer(net, lr=1e-3, seed=seed + 1, **kwargs)
    return trainer, net


class TestValidation:
    def test_invalid_active_fractions(self):
        net = MLP([8, 6, 3], seed=0)
        with pytest.raises(ValueError):
            ALSHApproxTrainer(net, min_active_frac=0.5, max_active_frac=0.2)
        with pytest.raises(ValueError):
            ALSHApproxTrainer(net, min_active_frac=0.0)


class TestIndexes:
    def test_one_index_per_hidden_layer(self):
        trainer, _ = make_trainer_and_net(depth=3)
        assert len(trainer.indexes) == 3
        assert trainer.n_hidden == 3

    def test_index_sized_to_layer(self):
        trainer, net = make_trainer_and_net(depth=2, width=40)
        assert len(trainer.indexes[0]) == 40
        assert trainer.indexes[0].dim == 20  # fan-in of layer 0
        assert trainer.indexes[1].dim == 40

    def test_memory_bytes(self):
        trainer, _ = make_trainer_and_net()
        assert trainer.index_memory_bytes() > 0


class TestActiveSelection:
    def test_bounds_respected(self, rng):
        trainer, net = make_trainer_and_net(
            depth=1, width=60, min_active_frac=0.1, max_active_frac=0.3
        )
        for _ in range(20):
            active = trainer._select_active(0, rng.normal(size=20))
            assert 6 <= active.size <= 18

    def test_active_fraction_tracked(self, rng):
        trainer, _ = make_trainer_and_net(depth=2)
        assert (trainer.average_active_fraction() == 0).all()
        trainer.train_batch(rng.normal(size=(1, 20)), np.array([0]))
        fracs = trainer.average_active_fraction()
        assert (fracs > 0).all()
        assert (fracs <= 1).all()


class TestTraining:
    def test_inactive_columns_untouched_per_step(self, rng):
        """Only the active columns of a hidden layer may change."""
        trainer, net = make_trainer_and_net(depth=1, width=50, seed=3)
        w_before = net.layers[0].W.copy()
        trainer.train_batch(rng.normal(size=(1, 20)), np.array([1]))
        changed = np.nonzero(np.abs(net.layers[0].W - w_before).sum(axis=0))[0]
        lo, hi = trainer._bounds(50)
        assert changed.size <= hi

    def test_learns_shallow(self, tiny_dataset):
        """With 1 hidden layer ALSH-approx should learn above chance —
        the paper's depth-1 regime where it is competitive."""
        net = MLP([tiny_dataset.input_dim, 48, tiny_dataset.n_classes], seed=0)
        trainer = ALSHApproxTrainer(
            net, lr=1e-3, seed=1, max_active_frac=0.5, min_active_frac=0.1
        )
        trainer.fit(
            tiny_dataset.x_train, tiny_dataset.y_train, epochs=4, batch_size=1
        )
        assert trainer.evaluate(tiny_dataset.x_test, tiny_dataset.y_test) > 0.5

    def test_depth_degradation(self, hard_dataset):
        """The paper's headline negative result (Thm 7.2, Fig. 7): accuracy
        degrades sharply as hidden layers are added."""

        def run(depth):
            net = MLP(
                [hard_dataset.input_dim] + [48] * depth + [hard_dataset.n_classes],
                seed=0,
            )
            tr = ALSHApproxTrainer(net, lr=1e-3, seed=1)
            tr.fit(
                hard_dataset.x_train, hard_dataset.y_train, epochs=3, batch_size=1
            )
            return tr.evaluate(hard_dataset.x_test, hard_dataset.y_test)

        shallow = run(1)
        deep = run(5)
        assert shallow > deep + 0.1

    def test_rebuild_scheduler_consumed(self, rng):
        sched = RebuildScheduler(early_every=5, late_every=5, warmup_samples=0)
        net = MLP([20, 30, 4], seed=0)
        trainer = ALSHApproxTrainer(net, lr=1e-3, seed=1, rebuild=sched)
        x = rng.normal(size=(20, 20))
        y = rng.integers(0, 4, 20)
        trainer.train_batch(x, y)
        assert sched.rebuild_count == 4
        # Touched sets are flushed on rebuild.
        assert all(len(t) < 30 for t in trainer._touched)

    def test_batch_loops_per_sample(self, rng):
        trainer, _ = make_trainer_and_net()
        loss = trainer.train_batch(rng.normal(size=(3, 20)), np.array([0, 1, 2]))
        assert np.isfinite(loss)


class TestInference:
    def test_sampled_prediction_shape(self, rng):
        trainer, _ = make_trainer_and_net()
        preds = trainer.predict(rng.normal(size=(7, 20)))
        assert preds.shape == (7,)
        assert ((preds >= 0) & (preds < 4)).all()

    def test_exact_prediction_available(self, rng):
        trainer, net = make_trainer_and_net()
        x = rng.normal(size=(5, 20))
        np.testing.assert_array_equal(trainer.predict_exact(x), net.predict(x))


class TestUnionBatchMode:
    def test_invalid_mode_rejected(self):
        net = MLP([8, 6, 3], seed=0)
        with pytest.raises(ValueError, match="batch_mode"):
            ALSHApproxTrainer(net, batch_mode="mean")

    def test_union_step_runs_and_is_finite(self, rng):
        net = MLP([20, 40, 4], seed=0)
        trainer = ALSHApproxTrainer(net, lr=1e-3, seed=1, batch_mode="union")
        loss = trainer.train_batch(
            rng.normal(size=(16, 20)), rng.integers(0, 4, 16)
        )
        assert np.isfinite(loss)

    def test_union_respects_caps(self, rng):
        net = MLP([20, 60, 4], seed=0)
        trainer = ALSHApproxTrainer(
            net, seed=1, batch_mode="union",
            min_active_frac=0.1, max_active_frac=0.3,
        )
        cand = trainer._select_active_union(0, rng.normal(size=(12, 20)))
        assert 6 <= cand.size <= 18

    def test_union_learns(self, tiny_dataset):
        net = MLP([tiny_dataset.input_dim, 48, tiny_dataset.n_classes], seed=0)
        trainer = ALSHApproxTrainer(
            net, lr=1e-3, seed=1, batch_mode="union",
            min_active_frac=0.1, max_active_frac=0.5,
        )
        trainer.fit(
            tiny_dataset.x_train, tiny_dataset.y_train, epochs=6, batch_size=20
        )
        assert trainer.evaluate(tiny_dataset.x_test, tiny_dataset.y_test) > 0.5

    def test_union_faster_than_per_sample(self, tiny_dataset):
        """The point of the mode: vectorised batches beat the Python loop."""

        def epoch_time(mode):
            net = MLP([tiny_dataset.input_dim, 64, tiny_dataset.n_classes],
                      seed=0)
            trainer = ALSHApproxTrainer(net, seed=1, batch_mode=mode)
            best = min(
                trainer.fit(
                    tiny_dataset.x_train, tiny_dataset.y_train,
                    epochs=1, batch_size=20,
                ).total_time
                for _ in range(2)
            )
            return best

        assert epoch_time("union") < epoch_time("per_sample")

    def test_batch_size_one_falls_back_to_per_sample(self, rng):
        """Union mode with a single sample is exactly the per-sample path."""
        x = rng.normal(size=(1, 20))
        y = np.array([1])
        net_a = MLP([20, 30, 4], seed=0)
        net_b = MLP([20, 30, 4], seed=0)
        ALSHApproxTrainer(net_a, seed=5, batch_mode="union").train_batch(x, y)
        ALSHApproxTrainer(net_b, seed=5, batch_mode="per_sample").train_batch(x, y)
        for la, lb in zip(net_a.layers, net_b.layers):
            np.testing.assert_array_equal(la.W, lb.W)

    def test_union_touched_columns_tracked(self, rng):
        net = MLP([20, 40, 4], seed=0)
        trainer = ALSHApproxTrainer(net, seed=1, batch_mode="union")
        trainer.train_batch(rng.normal(size=(8, 20)), rng.integers(0, 4, 8))
        assert len(trainer._touched[0]) > 0


class TestBackends:
    """The flat bucket storage must not change training trajectories.

    Both backends hash with seed-identical functions and return identical
    candidate sets, so for a fixed trainer seed the sequence of active
    sets — and therefore every weight update — must match bitwise.
    """

    def test_invalid_backend_rejected(self):
        net = MLP([8, 6, 3], seed=0)
        with pytest.raises(ValueError, match="backend"):
            ALSHApproxTrainer(net, backend="sparse")

    @pytest.mark.parametrize("batch_mode", ["per_sample", "union"])
    def test_backends_train_identically(self, rng, batch_mode):
        x = rng.normal(size=(40, 20))
        y = rng.integers(0, 4, 40)
        losses = {}
        for backend in ("dict", "flat"):
            net = MLP([20, 30, 30, 4], seed=0)
            # early_every small enough that the run crosses a rebuild.
            sched = RebuildScheduler(
                early_every=15, late_every=15, warmup_samples=0
            )
            trainer = ALSHApproxTrainer(
                net, lr=1e-3, seed=1, batch_mode=batch_mode,
                backend=backend, rebuild=sched,
            )
            losses[backend] = [
                trainer.train_batch(x[i : i + 8], y[i : i + 8])
                for i in range(0, 40, 8)
            ]
            losses[backend].append(net.layers[0].W.copy())
            assert sched.rebuild_count > 0
        *loss_d, w_d = losses["dict"]
        *loss_f, w_f = losses["flat"]
        assert loss_d == loss_f  # bitwise, not approx
        np.testing.assert_array_equal(w_d, w_f)
