"""Tests for the TOPK-APPROX oracle trainer."""

import numpy as np
import pytest

from repro.core.alsh_approx import ALSHApproxTrainer
from repro.core.topk_approx import TopKApproxTrainer
from repro.nn.network import MLP


class TestValidation:
    @pytest.mark.parametrize("frac", [0.0, 1.5])
    def test_invalid_active_frac(self, frac):
        with pytest.raises(ValueError):
            TopKApproxTrainer(MLP([8, 6, 3], seed=0), active_frac=frac)


class TestSelection:
    def test_oracle_selects_true_top_columns(self, rng):
        net = MLP([10, 40, 3], seed=0)
        trainer = TopKApproxTrainer(net, active_frac=0.2, seed=1)
        a = rng.normal(size=10)
        cand = trainer._select_active(0, a)
        assert cand.size == 8
        scores = np.abs(a @ net.layers[0].W)
        true_top = set(np.argsort(-scores)[:8].tolist())
        assert set(cand.tolist()) == true_top

    def test_full_budget_selects_everything(self, rng):
        net = MLP([10, 12, 3], seed=0)
        trainer = TopKApproxTrainer(net, active_frac=1.0, seed=1)
        cand = trainer._select_active(0, rng.normal(size=10))
        np.testing.assert_array_equal(cand, np.arange(12))


class TestTraining:
    def test_learns_shallow(self, tiny_dataset):
        net = MLP([tiny_dataset.input_dim, 48, tiny_dataset.n_classes], seed=0)
        trainer = TopKApproxTrainer(net, lr=1e-3, active_frac=0.3, seed=1)
        trainer.fit(
            tiny_dataset.x_train, tiny_dataset.y_train, epochs=4, batch_size=1
        )
        assert trainer.evaluate(tiny_dataset.x_test, tiny_dataset.y_test) > 0.5

    def test_oracle_depth_collapse(self, hard_dataset):
        """The point of the trainer: even perfect MIPS collapses at depth,
        exonerating LSH recall (Theorem 7.2's assumption made executable)."""

        def run(depth):
            net = MLP(
                [hard_dataset.input_dim] + [48] * depth + [hard_dataset.n_classes],
                seed=0,
            )
            tr = TopKApproxTrainer(net, lr=1e-3, active_frac=0.25, seed=1)
            tr.fit(
                hard_dataset.x_train, hard_dataset.y_train, epochs=3, batch_size=1
            )
            return tr.evaluate(hard_dataset.x_test, hard_dataset.y_test)

        assert run(1) > run(5) + 0.1

    def test_oracle_at_least_matches_alsh_shallow(self, tiny_dataset):
        """At the same budget, perfect selection should do no worse than
        LSH selection on a shallow network."""

        def run(cls, **kw):
            net = MLP([tiny_dataset.input_dim, 48, tiny_dataset.n_classes], seed=0)
            tr = cls(net, lr=1e-3, seed=1, **kw)
            tr.fit(
                tiny_dataset.x_train, tiny_dataset.y_train, epochs=3,
                batch_size=1,
            )
            return tr.evaluate(tiny_dataset.x_test, tiny_dataset.y_test)

        oracle = run(TopKApproxTrainer, active_frac=0.25)
        alsh = run(
            ALSHApproxTrainer, min_active_frac=0.25, max_active_frac=0.25
        )
        assert oracle >= alsh - 0.1

    def test_inactive_columns_untouched(self, rng):
        net = MLP([10, 30, 3], seed=0)
        trainer = TopKApproxTrainer(net, lr=0.5, active_frac=0.2, seed=1)
        x = rng.normal(size=10)
        cand = trainer._select_active(0, x)
        w_before = net.layers[0].W.copy()
        trainer.train_batch(x.reshape(1, -1), np.array([1]))
        inactive = np.setdiff1d(np.arange(30), cand)
        np.testing.assert_array_equal(
            net.layers[0].W[:, inactive], w_before[:, inactive]
        )

    def test_phase_timers_populated(self, rng):
        net = MLP([10, 20, 3], seed=0)
        trainer = TopKApproxTrainer(net, seed=1)
        history = trainer.fit(
            rng.normal(size=(30, 10)), rng.integers(0, 3, 30),
            epochs=1, batch_size=1,
        )
        assert history.forward_times()[0] > 0
        assert history.backward_times()[0] > 0


class TestInference:
    def test_predict_shapes(self, rng):
        net = MLP([10, 20, 4], seed=0)
        trainer = TopKApproxTrainer(net, seed=1)
        preds = trainer.predict(rng.normal(size=(6, 10)))
        assert preds.shape == (6,)
        assert ((preds >= 0) & (preds < 4)).all()

    def test_predict_exact_available(self, rng):
        net = MLP([10, 20, 4], seed=0)
        trainer = TopKApproxTrainer(net, seed=1)
        x = rng.normal(size=(5, 10))
        np.testing.assert_array_equal(trainer.predict_exact(x), net.predict(x))
