"""Tests for Trainer.fit extras: early stopping (+ schedule interplay)."""

import numpy as np
import pytest

from repro.core.standard import StandardTrainer
from repro.nn.network import MLP


class TestEarlyStopping:
    def test_requires_validation_split(self, tiny_dataset):
        net = MLP([tiny_dataset.input_dim, 8, tiny_dataset.n_classes], seed=0)
        trainer = StandardTrainer(net, lr=1e-2, seed=1)
        with pytest.raises(ValueError, match="validation"):
            trainer.fit(
                tiny_dataset.x_train, tiny_dataset.y_train,
                epochs=3, early_stopping_patience=1,
            )

    def test_invalid_patience(self, tiny_dataset):
        net = MLP([tiny_dataset.input_dim, 8, tiny_dataset.n_classes], seed=0)
        trainer = StandardTrainer(net, lr=1e-2, seed=1)
        with pytest.raises(ValueError, match="patience"):
            trainer.fit(
                tiny_dataset.x_train, tiny_dataset.y_train, epochs=3,
                x_val=tiny_dataset.x_val, y_val=tiny_dataset.y_val,
                early_stopping_patience=0,
            )

    def test_stops_when_no_progress(self, tiny_dataset):
        """With lr so small that accuracy never moves, patience triggers."""
        net = MLP([tiny_dataset.input_dim, 8, tiny_dataset.n_classes], seed=0)
        trainer = StandardTrainer(net, lr=1e-12, seed=1)
        history = trainer.fit(
            tiny_dataset.x_train, tiny_dataset.y_train, epochs=20,
            batch_size=20,
            x_val=tiny_dataset.x_val, y_val=tiny_dataset.y_val,
            early_stopping_patience=2,
        )
        # First epoch sets the best; two stagnant epochs then stop.
        assert len(history.epochs) <= 4

    def test_runs_to_completion_when_improving(self, tiny_dataset):
        net = MLP([tiny_dataset.input_dim, 24, tiny_dataset.n_classes], seed=0)
        trainer = StandardTrainer(net, lr=1e-2, seed=1)
        history = trainer.fit(
            tiny_dataset.x_train, tiny_dataset.y_train, epochs=5,
            batch_size=10,
            x_val=tiny_dataset.x_val, y_val=tiny_dataset.y_val,
            early_stopping_patience=5,
        )
        assert len(history.epochs) == 5

    def test_history_truncated_consistently(self, tiny_dataset):
        net = MLP([tiny_dataset.input_dim, 8, tiny_dataset.n_classes], seed=0)
        trainer = StandardTrainer(net, lr=1e-12, seed=1)
        history = trainer.fit(
            tiny_dataset.x_train, tiny_dataset.y_train, epochs=20,
            batch_size=20,
            x_val=tiny_dataset.x_val, y_val=tiny_dataset.y_val,
            early_stopping_patience=2,
        )
        assert history.losses().shape[0] == len(history.epochs)
        assert np.isfinite(history.val_accuracies()).all()
