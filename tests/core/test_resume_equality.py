"""Kill-and-resume equality for every training method.

The checkpoint subsystem's hard guarantee: a run interrupted at epoch k
and resumed from its checkpoint produces *bitwise identical* weights,
losses, validation accuracies and test predictions to an uninterrupted
run with the same seed.  Wall-clock timings are the only fields allowed
to differ.

"Interrupted" is simulated the honest way — a first trainer fits only k
epochs (writing checkpoints), then a *freshly constructed* trainer, as a
crashed process would build it, fits to the full horizon with ``resume``
picking up the checkpoint file.
"""

import numpy as np
import pytest

from repro.core.registry import make_trainer, trainer_names
from repro.nn.checkpoint import load_checkpoint
from repro.nn.network import MLP

METHODS = trainer_names()
EPOCHS = 4
KILL_AT = 2


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(5)
    return {
        "x": rng.normal(size=(80, 12)),
        "y": rng.integers(0, 3, size=80),
        "xv": rng.normal(size=(24, 12)),
        "yv": rng.integers(0, 3, size=24),
    }


def build(method, **kwargs):
    """A freshly constructed trainer, as a restarted process would build it."""
    net = MLP([12, 16, 16, 3], seed=7)
    return make_trainer(method, net, seed=11, **kwargs)


def fit(trainer, data, epochs, **kwargs):
    return trainer.fit(
        data["x"], data["y"], epochs=epochs, batch_size=16,
        x_val=data["xv"], y_val=data["yv"], **kwargs,
    )


def assert_identical(t_full, h_full, t_resumed, h_resumed, data):
    for i, (a, b) in enumerate(zip(t_full.net.layers, t_resumed.net.layers)):
        np.testing.assert_array_equal(a.W, b.W, err_msg=f"layer {i} W")
        np.testing.assert_array_equal(a.b, b.b, err_msg=f"layer {i} b")
    np.testing.assert_array_equal(h_full.losses(), h_resumed.losses())
    np.testing.assert_array_equal(
        h_full.val_accuracies(), h_resumed.val_accuracies()
    )
    np.testing.assert_array_equal(
        t_full.predict(data["xv"]), t_resumed.predict(data["xv"])
    )


def run_kill_resume(data, tmp_path, method, **kwargs):
    """(uninterrupted trainer+history, resumed trainer+history)."""
    t_full = build(method, **kwargs)
    h_full = fit(t_full, data, EPOCHS)

    t_killed = build(method, **kwargs)
    fit(t_killed, data, KILL_AT, checkpoint_every=1, checkpoint_dir=tmp_path)
    t_resumed = build(method, **kwargs)
    h_resumed = fit(
        t_resumed, data, EPOCHS, checkpoint_every=1, checkpoint_dir=tmp_path
    )
    return t_full, h_full, t_resumed, h_resumed


class TestKillResumeEquality:
    @pytest.mark.parametrize("method", METHODS)
    def test_bitwise_identical_after_resume(self, data, tmp_path, method):
        t_full, h_full, t_resumed, h_resumed = run_kill_resume(
            data, tmp_path, method
        )
        assert len(h_resumed.epochs) == EPOCHS
        assert_identical(t_full, h_full, t_resumed, h_resumed, data)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"backend": "dict"},
            {"hash_family": "dwta"},
            {"batch_mode": "union"},
            {"drift_threshold": 0.05},
        ],
        ids=["dict-backend", "dwta", "union-batch", "drift-tracker"],
    )
    def test_alsh_variants(self, data, tmp_path, kwargs):
        """Every ALSH aux-state path (tables, drift refs) survives resume."""
        t_full, h_full, t_resumed, h_resumed = run_kill_resume(
            data, tmp_path, "alsh", **kwargs
        )
        assert_identical(t_full, h_full, t_resumed, h_resumed, data)

    def test_resume_at_every_kill_point(self, data, tmp_path):
        """The guarantee holds wherever the crash lands, not just mid-run."""
        t_full = build("standard")
        h_full = fit(t_full, data, EPOCHS)
        for kill_at in range(1, EPOCHS + 1):
            d = tmp_path / f"kill{kill_at}"
            t_killed = build("standard")
            fit(t_killed, data, kill_at, checkpoint_every=1, checkpoint_dir=d)
            t_resumed = build("standard")
            h_resumed = fit(
                t_resumed, data, EPOCHS, checkpoint_every=1, checkpoint_dir=d
            )
            assert_identical(t_full, h_full, t_resumed, h_resumed, data)

    def test_checkpoint_every_n_resumes_from_last_multiple(
        self, data, tmp_path
    ):
        t_killed = build("standard")
        fit(t_killed, data, 3, checkpoint_every=2, checkpoint_dir=tmp_path)
        ckpt = load_checkpoint(tmp_path / "standard.ckpt.npz")
        # The final epoch of a run always checkpoints regardless of the
        # interval, so the 3-epoch killed run left a checkpoint at index 2.
        assert ckpt.epoch == 2
        t_full = build("standard")
        h_full = fit(t_full, data, EPOCHS)
        t_resumed = build("standard")
        h_resumed = fit(
            t_resumed, data, EPOCHS, checkpoint_every=2, checkpoint_dir=tmp_path
        )
        assert_identical(t_full, h_full, t_resumed, h_resumed, data)


class TestEarlyStopping:
    def test_early_stop_state_survives_resume(self, data, tmp_path):
        """best_val / patience counters resume exactly, so the resumed run
        stops at the same epoch as the uninterrupted one."""
        kwargs = {"early_stopping_patience": 2}
        t_full = build("standard")
        h_full = fit(t_full, data, 40, **kwargs)

        stop_epoch = len(h_full.epochs)
        kill_at = max(stop_epoch - 2, 1)
        t_killed = build("standard")
        fit(t_killed, data, kill_at, checkpoint_every=1,
            checkpoint_dir=tmp_path, **kwargs)
        t_resumed = build("standard")
        h_resumed = fit(t_resumed, data, 40, checkpoint_every=1,
                        checkpoint_dir=tmp_path, **kwargs)
        assert len(h_resumed.epochs) == stop_epoch
        assert_identical(t_full, h_full, t_resumed, h_resumed, data)

    def test_resuming_a_stopped_run_is_a_no_op(self, data, tmp_path):
        kwargs = {"early_stopping_patience": 2}
        t = build("standard")
        h = fit(t, data, 40, checkpoint_every=1, checkpoint_dir=tmp_path,
                **kwargs)
        ckpt = load_checkpoint(tmp_path / "standard.ckpt.npz")
        assert ckpt.stopped_early
        t2 = build("standard")
        h2 = fit(t2, data, 40, checkpoint_every=1, checkpoint_dir=tmp_path,
                 **kwargs)
        assert len(h2.epochs) == len(h.epochs)
        np.testing.assert_array_equal(h.losses(), h2.losses())

    def test_resuming_a_finished_run_is_a_no_op(self, data, tmp_path):
        t = build("standard")
        fit(t, data, EPOCHS, checkpoint_every=1, checkpoint_dir=tmp_path)
        t2 = build("standard")
        h2 = fit(t2, data, EPOCHS, checkpoint_every=1, checkpoint_dir=tmp_path)
        assert len(h2.epochs) == EPOCHS
        for a, b in zip(t.net.layers, t2.net.layers):
            np.testing.assert_array_equal(a.W, b.W)


class TestValidationAndCorruption:
    def test_checkpoint_every_requires_dir(self, data):
        with pytest.raises(ValueError, match="checkpoint_dir"):
            fit(build("standard"), data, 2, checkpoint_every=1)

    def test_checkpoint_every_must_be_positive(self, data, tmp_path):
        with pytest.raises(ValueError, match="positive"):
            fit(build("standard"), data, 2,
                checkpoint_every=0, checkpoint_dir=tmp_path)

    def test_method_mismatch_rejected(self, data, tmp_path):
        fit(build("standard"), data, 2, checkpoint_every=1,
            checkpoint_dir=tmp_path, checkpoint_tag="shared")
        with pytest.raises(ValueError, match="standard"):
            fit(build("dropout"), data, EPOCHS, checkpoint_every=1,
                checkpoint_dir=tmp_path, checkpoint_tag="shared")

    def test_architecture_mismatch_rejected(self, data, tmp_path):
        fit(build("standard"), data, 2, checkpoint_every=1,
            checkpoint_dir=tmp_path)
        other = make_trainer("standard", MLP([12, 8, 3], seed=7), seed=11)
        with pytest.raises(ValueError, match="missing arrays|shape mismatch"):
            other.fit(data["x"], data["y"], epochs=EPOCHS, batch_size=16,
                      checkpoint_every=1, checkpoint_dir=tmp_path,
                      checkpoint_tag="standard")

    def test_resume_false_ignores_existing_checkpoint(self, data, tmp_path):
        t1 = build("standard")
        fit(t1, data, 2, checkpoint_every=1, checkpoint_dir=tmp_path)
        t2 = build("standard")
        h2 = fit(t2, data, 2, checkpoint_every=1, checkpoint_dir=tmp_path,
                 resume=False)
        # A full re-run from epoch 0, not a no-op resume.
        assert len(h2.epochs) == 2
        for a, b in zip(t1.net.layers, t2.net.layers):
            np.testing.assert_array_equal(a.W, b.W)

    @pytest.mark.parametrize("keep_fraction", [0.3, 0.7])
    def test_truncated_checkpoint_fails_cleanly(
        self, data, tmp_path, keep_fraction
    ):
        """A mid-file truncation (torn disk write without the atomic
        rename) surfaces as a clear ValueError, not a numpy traceback."""
        fit(build("standard"), data, 2, checkpoint_every=1,
            checkpoint_dir=tmp_path)
        path = tmp_path / "standard.ckpt.npz"
        blob = path.read_bytes()
        path.write_bytes(blob[: int(len(blob) * keep_fraction)])
        with pytest.raises(ValueError, match="truncated or corrupt"):
            fit(build("standard"), data, EPOCHS, checkpoint_every=1,
                checkpoint_dir=tmp_path)

    def test_adaptive_dropout_config_mismatch_rejected(self, data, tmp_path):
        fit(build("adaptive_dropout"), data, 2, checkpoint_every=1,
            checkpoint_dir=tmp_path)
        changed = build("adaptive_dropout", alpha=2.0)
        with pytest.raises(ValueError, match="alpha"):
            fit(changed, data, EPOCHS, checkpoint_every=1,
                checkpoint_dir=tmp_path)
