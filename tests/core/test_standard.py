"""Tests for the STANDARD (exact) trainer."""

import numpy as np
import pytest

from repro.core.standard import StandardTrainer
from repro.nn.network import MLP


class TestSingleStep:
    def test_matches_manual_sgd_step(self, rng):
        """One train_batch must equal a hand-computed exact SGD step."""
        net = MLP([6, 5, 3], seed=0)
        x = rng.normal(size=(4, 6))
        y = rng.integers(0, 3, 4)
        reference = MLP([6, 5, 3], seed=0)
        grads = reference.backward(reference.forward(x), y)
        lr = 0.05
        expected = [
            (layer.W - lr * g_w, layer.b - lr * g_b)
            for layer, (g_w, g_b) in zip(reference.layers, grads)
        ]
        trainer = StandardTrainer(net, lr=lr, optimizer="sgd", seed=1)
        trainer.train_batch(x, y)
        for layer, (w_exp, b_exp) in zip(net.layers, expected):
            np.testing.assert_allclose(layer.W, w_exp, atol=1e-12)
            np.testing.assert_allclose(layer.b, b_exp, atol=1e-12)

    def test_returns_pre_update_loss(self, rng):
        net = MLP([6, 3], seed=0)
        x = rng.normal(size=(2, 6))
        y = np.array([0, 1])
        expected = net.loss(x, y)
        trainer = StandardTrainer(net, lr=0.1)
        assert trainer.train_batch(x, y) == pytest.approx(expected)


class TestFit:
    def test_loss_decreases(self, tiny_dataset):
        net = MLP([tiny_dataset.input_dim, 32, tiny_dataset.n_classes], seed=0)
        trainer = StandardTrainer(net, lr=1e-2, seed=1)
        history = trainer.fit(
            tiny_dataset.x_train, tiny_dataset.y_train, epochs=5, batch_size=20
        )
        losses = history.losses()
        assert losses[-1] < losses[0]

    def test_learns_above_chance(self, tiny_dataset):
        net = MLP([tiny_dataset.input_dim, 32, tiny_dataset.n_classes], seed=0)
        trainer = StandardTrainer(net, lr=1e-2, seed=1)
        trainer.fit(
            tiny_dataset.x_train, tiny_dataset.y_train, epochs=8, batch_size=10
        )
        acc = trainer.evaluate(tiny_dataset.x_test, tiny_dataset.y_test)
        assert acc > 0.6  # chance is 1/3

    def test_history_bookkeeping(self, tiny_dataset):
        net = MLP([tiny_dataset.input_dim, 16, tiny_dataset.n_classes], seed=0)
        trainer = StandardTrainer(net, lr=1e-2, seed=1)
        history = trainer.fit(
            tiny_dataset.x_train,
            tiny_dataset.y_train,
            epochs=3,
            batch_size=20,
            x_val=tiny_dataset.x_val,
            y_val=tiny_dataset.y_val,
        )
        assert history.method == "standard"
        assert len(history.epochs) == 3
        assert (history.epoch_times() > 0).all()
        assert (history.forward_times() >= 0).all()
        assert (history.backward_times() >= 0).all()
        assert not np.isnan(history.val_accuracies()).any()
        assert history.total_time == pytest.approx(history.epoch_times().sum())

    def test_phase_times_bounded_by_epoch_time(self, tiny_dataset):
        net = MLP([tiny_dataset.input_dim, 16, tiny_dataset.n_classes], seed=0)
        trainer = StandardTrainer(net, lr=1e-2, seed=1)
        history = trainer.fit(
            tiny_dataset.x_train, tiny_dataset.y_train, epochs=2, batch_size=10
        )
        for e in history.epochs:
            assert e.forward_time + e.backward_time <= e.time + 1e-6

    def test_invalid_epochs(self, tiny_dataset):
        net = MLP([tiny_dataset.input_dim, 8, tiny_dataset.n_classes], seed=0)
        trainer = StandardTrainer(net, lr=0.1)
        with pytest.raises(ValueError):
            trainer.fit(tiny_dataset.x_train, tiny_dataset.y_train, epochs=0)

    def test_stochastic_regime(self, tiny_dataset):
        """batch_size=1 runs one update per sample (paper's S setting)."""
        net = MLP([tiny_dataset.input_dim, 16, tiny_dataset.n_classes], seed=0)
        trainer = StandardTrainer(net, lr=1e-3, seed=1)
        history = trainer.fit(
            tiny_dataset.x_train[:50], tiny_dataset.y_train[:50],
            epochs=1, batch_size=1,
        )
        assert len(history.epochs) == 1
