"""Tests for the MC-APPROX trainer."""

import numpy as np
import pytest

from repro.core.mc_approx import MCApproxTrainer
from repro.core.standard import StandardTrainer
from repro.nn.network import MLP


class TestValidation:
    def test_invalid_k(self):
        with pytest.raises(ValueError):
            MCApproxTrainer(MLP([4, 3, 2], seed=0), k=0)

    def test_invalid_node_frac(self):
        with pytest.raises(ValueError):
            MCApproxTrainer(MLP([4, 3, 2], seed=0), node_frac=0.0)


class TestSampledMatmul:
    def test_full_budget_exact(self, rng):
        trainer = MCApproxTrainer(MLP([4, 3, 2], seed=0), seed=1)
        a = rng.normal(size=(5, 10))
        b = rng.normal(size=(10, 6))
        np.testing.assert_allclose(
            trainer._sampled_matmul(a, b, 10), a @ b, atol=1e-10
        )

    def test_budget_clipped_to_inner_dim(self, rng):
        trainer = MCApproxTrainer(MLP([4, 3, 2], seed=0), seed=1)
        a = rng.normal(size=(2, 3))
        b = rng.normal(size=(3, 2))
        # budget 50 > inner dim 3: must behave like exact.
        np.testing.assert_allclose(
            trainer._sampled_matmul(a, b, 50), a @ b, atol=1e-10
        )

    def test_unbiased_estimate(self, rng):
        trainer = MCApproxTrainer(MLP([4, 3, 2], seed=0), seed=1)
        a = rng.normal(size=(4, 20))
        b = rng.normal(size=(20, 3))
        exact = a @ b
        acc = np.zeros_like(exact)
        n = 600
        for _ in range(n):
            acc += trainer._sampled_matmul(a, b, 5)
        err = np.linalg.norm(acc / n - exact, "fro") / np.linalg.norm(exact, "fro")
        assert err < 0.15


class TestGradientFidelity:
    def test_expected_update_tracks_exact_gradient(self, rng):
        """The mean MC weight update must align with the exact gradient
        direction (cosine similarity near 1)."""
        x = rng.normal(size=(16, 10))
        y = rng.integers(0, 3, 16)
        ref = MLP([10, 12, 3], seed=0)
        exact_grads = ref.backward(ref.forward(x), y)
        lr = 0.1
        n_trials = 200
        mean_update = [np.zeros_like(layer.W) for layer in ref.layers]
        for t in range(n_trials):
            net = MLP([10, 12, 3], seed=0)
            trainer = MCApproxTrainer(net, lr=lr, k=6, node_frac=0.5, seed=t)
            trainer.train_batch(x, y)
            for i, layer in enumerate(net.layers):
                mean_update[i] += ref.layers[i].W - layer.W  # = lr * grad_est
        for i, (g_w, _) in enumerate(exact_grads):
            est = mean_update[i] / (n_trials * lr)
            cos = (est * g_w).sum() / (
                np.linalg.norm(est) * np.linalg.norm(g_w)
            )
            assert cos > 0.95, f"layer {i} cosine {cos}"

    def test_full_budget_matches_standard(self, rng):
        """k and node_frac at full budget make MC-approx identical to the
        exact trainer (sampling keeps everything, scales are 1)."""
        x = rng.normal(size=(4, 8))
        y = rng.integers(0, 3, 4)
        net_a = MLP([8, 6, 3], seed=0)
        net_b = MLP([8, 6, 3], seed=0)
        MCApproxTrainer(net_a, lr=0.1, k=100, node_frac=1.0, seed=1).train_batch(x, y)
        StandardTrainer(net_b, lr=0.1, seed=1).train_batch(x, y)
        for la, lb in zip(net_a.layers, net_b.layers):
            np.testing.assert_allclose(la.W, lb.W, atol=1e-10)
            np.testing.assert_allclose(la.b, lb.b, atol=1e-10)


class TestTraining:
    def test_learns_minibatch(self, tiny_dataset):
        net = MLP([tiny_dataset.input_dim, 48, tiny_dataset.n_classes], seed=0)
        trainer = MCApproxTrainer(net, lr=1e-2, k=10, seed=1)
        trainer.fit(
            tiny_dataset.x_train, tiny_dataset.y_train, epochs=10, batch_size=20
        )
        assert trainer.evaluate(tiny_dataset.x_test, tiny_dataset.y_test) > 0.6

    def test_scales_with_depth(self, tiny_dataset):
        """Unlike ALSH-approx, MC-approx keeps learning at depth (backprop-
        only approximation doesn't compound through the forward chain)."""
        net = MLP(
            [tiny_dataset.input_dim] + [32] * 5 + [tiny_dataset.n_classes], seed=0
        )
        trainer = MCApproxTrainer(net, lr=1e-2, k=10, seed=1)
        trainer.fit(
            tiny_dataset.x_train, tiny_dataset.y_train, epochs=12, batch_size=20
        )
        assert trainer.evaluate(tiny_dataset.x_test, tiny_dataset.y_test) > 0.5

    def test_forward_pass_exact_by_default(self, rng):
        """The published method approximates only backprop: the training
        loss reported for a batch equals the exact network loss."""
        net = MLP([8, 6, 3], seed=0)
        trainer = MCApproxTrainer(net, lr=0.0001, seed=1)
        x = rng.normal(size=(3, 8))
        y = np.array([0, 1, 2])
        expected = net.loss(x, y)
        assert trainer.train_batch(x, y) == pytest.approx(expected)

    def test_forward_approximation_flag(self, rng):
        """approximate_forward=True perturbs the forward pass (the §10.1
        negative-result ablation)."""
        net = MLP([8, 20, 3], seed=0)
        trainer = MCApproxTrainer(
            net, lr=0.0001, node_frac=0.2, min_node_samples=1,
            approximate_forward=True, seed=1,
        )
        x = rng.normal(size=(3, 8))
        y = np.array([0, 1, 2])
        exact = net.loss(x, y)
        losses = [trainer.train_batch(x, y) for _ in range(5)]
        assert any(abs(l - exact) > 1e-9 for l in losses)
