"""Tests for the DROPOUT trainer (current-layer uniform sampling)."""

import numpy as np
import pytest

from repro.core.dropout import DropoutTrainer
from repro.nn.network import MLP


class TestValidation:
    def test_invalid_keep_prob(self):
        net = MLP([4, 3, 2], seed=0)
        with pytest.raises(ValueError):
            DropoutTrainer(net, keep_prob=0.0)
        with pytest.raises(ValueError):
            DropoutTrainer(net, keep_prob=1.5)

    def test_invalid_min_active(self):
        net = MLP([4, 3, 2], seed=0)
        with pytest.raises(ValueError):
            DropoutTrainer(net, min_active=0)


class TestSampling:
    def test_active_set_size_distribution(self):
        net = MLP([4, 100, 2], seed=0)
        trainer = DropoutTrainer(net, keep_prob=0.3, seed=1)
        sizes = [trainer._sample_active(100).size for _ in range(300)]
        assert np.mean(sizes) == pytest.approx(30, abs=3)

    def test_min_active_enforced(self):
        net = MLP([4, 100, 2], seed=0)
        trainer = DropoutTrainer(net, keep_prob=0.001, min_active=5, seed=1)
        for _ in range(50):
            assert trainer._sample_active(100).size >= 5


class TestTraining:
    def test_keep_prob_one_matches_standard_updates(self, rng):
        """With keep_prob=1 every node is active: updates must equal the
        exact trainer's."""
        from repro.core.standard import StandardTrainer

        x = rng.normal(size=(3, 6))
        y = rng.integers(0, 3, 3)
        net_a = MLP([6, 5, 3], seed=0)
        net_b = MLP([6, 5, 3], seed=0)
        DropoutTrainer(net_a, lr=0.1, keep_prob=1.0, seed=1).train_batch(x, y)
        StandardTrainer(net_b, lr=0.1, seed=1).train_batch(x, y)
        for la, lb in zip(net_a.layers, net_b.layers):
            np.testing.assert_allclose(la.W, lb.W, atol=1e-10)
            np.testing.assert_allclose(la.b, lb.b, atol=1e-10)

    def test_inactive_columns_untouched(self, rng):
        """Weights of dropped hidden nodes must not change in a step."""
        net = MLP([6, 40, 3], seed=0)
        trainer = DropoutTrainer(net, lr=0.5, keep_prob=0.1, seed=2)
        w_before = net.layers[0].W.copy()
        # Capture the sampled set by seeding the trainer's rng fork.
        probe = DropoutTrainer(net, lr=0.5, keep_prob=0.1, seed=2)
        cols = probe._sample_active(40)
        trainer.train_batch(rng.normal(size=(1, 6)), np.array([0]))
        inactive = np.setdiff1d(np.arange(40), cols)
        np.testing.assert_array_equal(
            net.layers[0].W[:, inactive], w_before[:, inactive]
        )

    def test_learns_with_moderate_keep_prob(self, tiny_dataset):
        net = MLP([tiny_dataset.input_dim, 64, tiny_dataset.n_classes], seed=0)
        trainer = DropoutTrainer(net, lr=1e-2, keep_prob=0.5, seed=1)
        trainer.fit(
            tiny_dataset.x_train, tiny_dataset.y_train, epochs=10, batch_size=10
        )
        assert trainer.evaluate(tiny_dataset.x_test, tiny_dataset.y_test) > 0.5

    def test_tiny_keep_prob_hurts(self, hard_dataset):
        """The paper's p=0.05 fair-comparison setting cripples dropout
        relative to exact training (Table 2)."""
        from repro.core.standard import StandardTrainer

        def run(cls, **kw):
            net = MLP([hard_dataset.input_dim, 64, 64, hard_dataset.n_classes], seed=0)
            tr = cls(net, lr=1e-2, seed=1, **kw)
            tr.fit(hard_dataset.x_train, hard_dataset.y_train, epochs=5, batch_size=10)
            return tr.evaluate(hard_dataset.x_test, hard_dataset.y_test)

        assert run(DropoutTrainer, keep_prob=0.05) < run(StandardTrainer)

    def test_predict_scales_hidden_activations(self, rng):
        """Inference must apply the keep_prob weight-scaling rule."""
        net = MLP([6, 5, 3], seed=0)
        trainer = DropoutTrainer(net, keep_prob=0.4, seed=1)
        x = rng.normal(size=(4, 6))
        # Manual scaled forward.
        a = x
        a = net.hidden_activation.forward(net.layers[0].forward(a)) * 0.4
        logits = net.layers[1].forward(a)
        np.testing.assert_array_equal(trainer.predict(x), logits.argmax(axis=1))

    def test_loss_returned_finite(self, rng):
        net = MLP([6, 10, 3], seed=0)
        trainer = DropoutTrainer(net, lr=0.1, keep_prob=0.3, seed=1)
        loss = trainer.train_batch(rng.normal(size=(2, 6)), np.array([0, 2]))
        assert np.isfinite(loss)
