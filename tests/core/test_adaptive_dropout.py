"""Tests for the ADAPTIVE-DROPOUT (standout) trainer."""

import numpy as np
import pytest

from repro.core.adaptive_dropout import AdaptiveDropoutTrainer
from repro.core.dropout import DropoutTrainer
from repro.core.standard import StandardTrainer
from repro.nn.network import MLP


class TestValidation:
    def test_invalid_target_keep(self):
        net = MLP([4, 3, 2], seed=0)
        for bad in (0.0, 1.0):
            with pytest.raises(ValueError):
                AdaptiveDropoutTrainer(net, target_keep=bad)


class TestKeepProbabilities:
    def test_beta_defaults_to_logit_of_target(self):
        net = MLP([4, 3, 2], seed=0)
        trainer = AdaptiveDropoutTrainer(net, target_keep=0.05)
        # At z = 0 the keep probability equals the target.
        p = trainer.keep_probabilities(np.zeros((1, 3)))
        np.testing.assert_allclose(p, 0.05, rtol=1e-9)

    def test_data_dependence_monotone(self):
        """Larger pre-activations get larger keep probabilities — the whole
        point of standout vs plain dropout."""
        net = MLP([4, 3, 2], seed=0)
        trainer = AdaptiveDropoutTrainer(net, alpha=1.0, target_keep=0.05)
        z = np.array([[-3.0, 0.0, 3.0]])
        p = trainer.keep_probabilities(z)
        assert p[0, 0] < p[0, 1] < p[0, 2]

    def test_explicit_beta_overrides(self):
        net = MLP([4, 3, 2], seed=0)
        trainer = AdaptiveDropoutTrainer(net, beta=0.0, target_keep=0.05)
        np.testing.assert_allclose(
            trainer.keep_probabilities(np.zeros((1, 3))), 0.5
        )


class TestTraining:
    def test_learns(self, tiny_dataset):
        net = MLP([tiny_dataset.input_dim, 48, tiny_dataset.n_classes], seed=0)
        trainer = AdaptiveDropoutTrainer(
            net, lr=1e-2, alpha=1.0, target_keep=0.3, seed=1
        )
        trainer.fit(
            tiny_dataset.x_train, tiny_dataset.y_train, epochs=10, batch_size=10
        )
        assert trainer.evaluate(tiny_dataset.x_test, tiny_dataset.y_test) > 0.5

    def test_beats_plain_dropout_at_small_keep(self, hard_dataset):
        """The paper's Table 2 finding: data-dependent sampling rescues the
        tiny keep rate that cripples plain dropout."""

        def run(cls, **kw):
            net = MLP(
                [hard_dataset.input_dim, 64, 64, hard_dataset.n_classes], seed=0
            )
            tr = cls(net, lr=1e-2, seed=1, **kw)
            tr.fit(
                hard_dataset.x_train, hard_dataset.y_train, epochs=6, batch_size=10
            )
            return tr.evaluate(hard_dataset.x_test, hard_dataset.y_test)

        adaptive = run(AdaptiveDropoutTrainer, alpha=2.0, target_keep=0.05)
        plain = run(DropoutTrainer, keep_prob=0.05)
        assert adaptive > plain

    def test_full_products_computed(self, rng):
        """Standout computes the full pre-activation (the §9.2 overhead);
        the masked-out nodes still receive z values internally.  Verify via
        the gradient: even with keep probabilities forced to ~1, updates
        must match standard training."""
        x = rng.normal(size=(3, 6))
        y = rng.integers(0, 3, 3)
        net_a = MLP([6, 5, 3], seed=0)
        net_b = MLP([6, 5, 3], seed=0)
        # beta = +37 → sigmoid ≈ 1 → masks are all-ones.
        AdaptiveDropoutTrainer(net_a, lr=0.1, beta=37.0, seed=1).train_batch(x, y)
        StandardTrainer(net_b, lr=0.1, seed=1).train_batch(x, y)
        for la, lb in zip(net_a.layers, net_b.layers):
            np.testing.assert_allclose(la.W, lb.W, atol=1e-10)

    def test_predict_uses_expected_masks(self, rng):
        net = MLP([6, 5, 3], seed=0)
        trainer = AdaptiveDropoutTrainer(net, beta=37.0, seed=1)
        x = rng.normal(size=(4, 6))
        # With keep probs ≈ 1 the prediction equals the exact forward pass.
        np.testing.assert_array_equal(trainer.predict(x), net.predict(x))

    def test_loss_finite(self, rng):
        net = MLP([6, 10, 3], seed=0)
        trainer = AdaptiveDropoutTrainer(net, lr=0.1, seed=1)
        loss = trainer.train_batch(rng.normal(size=(2, 6)), np.array([0, 1]))
        assert np.isfinite(loss)
